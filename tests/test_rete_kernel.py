"""Unit tests for the flattened match kernel's building blocks:
token-pool lifecycle, the numpy capability gate, vectorized-alpha
engagement, flat memories and the network front-end's compile
behaviour."""

import pytest

from repro.ops5 import parse_production
from repro.ops5.wme import WME
from repro.rete import (NUMPY_MIN_PATTERNS, FlatMemories, ReteError,
                        ReteNetwork, TokenPool, resolve_numpy)

numpy_installed = resolve_numpy(True) is not None


def _wme(wid, cls="a", **attrs):
    return WME(wid, cls, attrs, timestamp=wid)


# ---------------------------------------------------------------------------
# TokenPool
# ---------------------------------------------------------------------------

class TestTokenPool:
    def test_alloc_starts_unreferenced(self):
        pool = TokenPool()
        idx = pool.alloc((1,), (_wme(1),), ("x",))
        assert pool.refs[idx] == 0
        assert pool.live_count() == 1

    def test_release_frees_and_reuses_slot(self):
        pool = TokenPool()
        idx = pool.alloc((1,), (_wme(1),), ("x",))
        pool.retain(idx)
        pool.release(idx)
        assert pool.live_count() == 0
        assert pool.ids[idx] is None
        idx2 = pool.alloc((2,), (_wme(2),), ("y",))
        assert idx2 == idx  # free list reuses the slot
        assert pool.values[idx2] == ("y",)

    def test_refcount_keeps_slot_alive(self):
        pool = TokenPool()
        idx = pool.alloc((1,), (_wme(1),), ())
        pool.retain(idx)
        pool.retain(idx)
        pool.release(idx)
        assert pool.live_count() == 1
        pool.release(idx)
        assert pool.live_count() == 0

    def test_release_if_unused_only_frees_unreferenced(self):
        pool = TokenPool()
        kept = pool.alloc((1,), (_wme(1),), ())
        pool.retain(kept)
        loose = pool.alloc((2,), (_wme(2),), ())
        pool.release_if_unused(kept)
        pool.release_if_unused(loose)
        assert pool.live_count() == 1
        assert pool.ids[kept] == (1,)

    def test_wave_end_sweep_cannot_double_free_reused_slot(self):
        """A slot recycled mid-wave and immediately reallocated must
        survive the wave-end ``release_if_unused`` sweep over the old
        index — the free marker (refs == -1) breaks the aliasing."""
        pool = TokenPool()
        idx = pool.alloc((1,), (_wme(1),), ())
        pool.retain(idx)
        pool.release(idx)            # mid-wave recycle: refs -> -1
        assert pool.refs[idx] == -1
        again = pool.alloc((2,), (_wme(2),), ())
        assert again == idx          # reallocated under the same index
        pool.retain(again)
        pool.release_if_unused(idx)  # wave-end sweep over the OLD alloc
        assert pool.live_count() == 1
        assert pool.ids[again] == (2,)
        assert idx not in pool._free

    def test_capacity_is_high_water_mark(self):
        pool = TokenPool()
        slots = [pool.alloc((i,), (_wme(i),), ()) for i in range(5)]
        for idx in slots:
            pool.release_if_unused(idx)
        assert pool.capacity() == 5
        assert pool.live_count() == 0
        pool.alloc((9,), (_wme(9),), ())
        assert pool.capacity() == 5  # reuse, not growth


# ---------------------------------------------------------------------------
# numpy gate
# ---------------------------------------------------------------------------

class TestResolveNumpy:
    def test_force_off(self):
        assert resolve_numpy(False) is None

    def test_env_var_disables(self, monkeypatch):
        for word in ("0", "off", "FALSE", "no"):
            monkeypatch.setenv("REPRO_RETE_NUMPY", word)
            assert resolve_numpy(None) is None

    def test_explicit_true_ignores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETE_NUMPY", "0")
        assert resolve_numpy(True) is resolve_numpy(True)  # stable
        if numpy_installed:
            assert resolve_numpy(True) is not None

    @pytest.mark.skipif(not numpy_installed, reason="numpy not installed")
    def test_default_enables_when_importable(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETE_NUMPY", raising=False)
        assert resolve_numpy(None) is not None


def _const_battery_network(n_patterns, **kwargs):
    net = ReteNetwork(**kwargs)
    for v in range(n_patterns):
        net.add_production(parse_production(
            f"(p const{v} (a ^p {v}) --> (remove 1))"))
    return net


@pytest.mark.skipif(not numpy_installed, reason="numpy not installed")
class TestVectorizedAlpha:
    def test_engages_at_threshold(self):
        net = _const_battery_network(NUMPY_MIN_PATTERNS, use_numpy=True)
        assert net.kernel.numpy_engaged

    def test_stays_off_below_threshold(self):
        net = _const_battery_network(NUMPY_MIN_PATTERNS - 1,
                                     use_numpy=True)
        assert not net.kernel.numpy_engaged

    def test_forced_off_never_engages(self):
        net = _const_battery_network(NUMPY_MIN_PATTERNS * 2,
                                     use_numpy=False)
        assert not net.kernel.numpy_engaged

    def test_env_var_disables_engagement(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETE_NUMPY", "0")
        net = _const_battery_network(NUMPY_MIN_PATTERNS * 2)
        assert not net.kernel.numpy_engaged

    def test_vectorized_and_scalar_agree(self):
        nets = [_const_battery_network(12, use_numpy=True),
                _const_battery_network(12, use_numpy=False)]
        assert nets[0].kernel.numpy_engaged
        assert not nets[1].kernel.numpy_engaged
        wid = 0
        for v in [0, 3, 11, 99, "x", 3, 0]:
            wid += 1
            wme = _wme(wid, p=v)
            for net in nets:
                net.add_wme(wme)
            sigs = [sorted((i.production.name, tuple(w.wme_id
                                                     for w in i.wmes))
                           for i in net.conflict_set())
                    for net in nets]
            assert sigs[0] == sigs[1]

    def test_bool_values_never_match_numeric_constants(self):
        # values_equal(True, 1) is False even though True == 1 in
        # Python; the encoded alpha path must preserve that.
        nets = [_const_battery_network(12, use_numpy=True),
                _const_battery_network(12, use_numpy=False)]
        wme = _wme(1, p=True)
        for net in nets:
            net.add_wme(wme)
            assert net.conflict_set() == []


# ---------------------------------------------------------------------------
# FlatMemories
# ---------------------------------------------------------------------------

class TestFlatMemories:
    def test_counts_and_empty(self):
        mem = FlatMemories(3)
        assert mem.is_empty()
        assert mem.counts() == (0, 0)
        mem.left[1][("k",)] = [0, 1]
        mem.right[2][()] = [_wme(1)]
        assert not mem.is_empty()
        assert mem.counts() == (2, 1)
        mem.clear()
        assert mem.is_empty()

    def test_empty_bucket_must_be_deleted_not_kept(self):
        # The kernel deletes emptied buckets so is_empty stays O(nodes).
        mem = FlatMemories(1)
        mem.left[0][("k",)] = []
        assert not mem.is_empty()  # documents why deletion matters


# ---------------------------------------------------------------------------
# network front end
# ---------------------------------------------------------------------------

class TestNetworkFrontEnd:
    def test_late_production_add_raises(self):
        net = ReteNetwork()
        net.add_production(parse_production(
            "(p one (a ^p 1) --> (remove 1))"))
        net.add_wme(_wme(1, p=1))
        with pytest.raises(ReteError):
            net.add_production(parse_production(
                "(p two (a ^p 2) --> (remove 1))"))

    def test_kernel_recompiles_after_new_production(self):
        net = ReteNetwork()
        net.add_production(parse_production(
            "(p one (a ^p 1) --> (remove 1))"))
        first = net.kernel
        net.add_production(parse_production(
            "(p two (a ^p 2) --> (remove 1))"))
        assert net.kernel is not first
        net.add_wme(_wme(1, p=2))
        assert [i.production.name for i in net.conflict_set()] == ["two"]

    def test_memories_drain_after_symmetric_churn(self):
        net = ReteNetwork()
        net.add_production(parse_production(
            "(p join2 (a ^p <x>) (b ^p <x>) --> (remove 1))"))
        wmes = [_wme(1, p=1), WME(2, "b", {"p": 1}, timestamp=2)]
        for wme in wmes:
            net.add_wme(wme)
        assert len(net.conflict_set()) == 1
        assert not net.memories.is_empty()
        for wme in wmes:
            net.remove_wme(wme)
        assert net.conflict_set() == []
        assert net.memories.is_empty()
        assert net.kernel.pool.live_count() == 0

"""Tests for :class:`repro.mpc.RunConfig` and the ``simulate`` shim.

The config object is the one value naming a complete machine
configuration; its contracts are (a) it validates on construction with
the CLI's exact one-line messages, (b) ``from_args`` reproduces the
CLI's legacy flag handling, and (c) the deprecated keyword sprawl on
``simulate()`` still works but warns — while the supported short form
stays silent.
"""

import warnings
from types import SimpleNamespace

import pytest

from repro.mpc import (OVERHEADS, TABLE_5_1, FaultModel, ProtocolModel,
                       RoundRobinMapping, RunConfig, TimelineRecorder,
                       ZERO_OVERHEADS, simulate, simulate_config)
from repro.workloads import rubik_section


class TestValidation:
    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError,
                           match="need at least one match processor"):
            RunConfig(n_procs=0)

    def test_rejects_mapping_proc_mismatch(self):
        with pytest.raises(ValueError,
                           match="mapping built for 8 processors, "
                                 "simulating 4"):
            RunConfig(n_procs=4, mapping=RoundRobinMapping(n_procs=8))

    def test_replace_revalidates(self):
        config = RunConfig(n_procs=4)
        with pytest.raises(ValueError):
            config.replace(n_procs=0)
        assert config.replace(n_procs=8).n_procs == 8
        assert config.n_procs == 4  # frozen: replace copies

    def test_faulty_flag(self):
        assert not RunConfig().faulty
        assert not RunConfig(faults=FaultModel()).faulty  # null model
        assert RunConfig(faults=FaultModel(loss_prob=0.1)).faulty

    def test_overheads_table_keyed_by_total(self):
        assert sorted(OVERHEADS) == [0, 8, 16, 32]
        for total, model in OVERHEADS.items():
            assert int(model.total_us) == total
        assert set(OVERHEADS.values()) <= set(TABLE_5_1)


class TestFromArgs:
    def args(self, **kw):
        return SimpleNamespace(**kw)

    def test_defaults(self):
        config = RunConfig.from_args(self.args())
        assert config.n_procs == 1
        assert config.overheads is OVERHEADS[0]
        assert config.faults is None  # null faults collapse to None
        assert config.protocol == ProtocolModel(timeout_us=500.0,
                                                max_retries=8)

    def test_overhead_row_lookup(self):
        config = RunConfig.from_args(self.args(overhead=16, procs=8))
        assert config.overheads is OVERHEADS[16]
        assert config.n_procs == 8

    def test_bad_overhead_message(self):
        with pytest.raises(ValueError) as err:
            RunConfig.from_args(self.args(overhead=7))
        assert str(err.value) == \
            "--overhead must be one of [0, 8, 16, 32]"

    def test_fault_flags_build_model(self):
        config = RunConfig.from_args(self.args(
            loss=0.1, dup=0.05, jitter=2.0, fault_seed=7))
        assert config.faults == FaultModel(seed=7, loss_prob=0.1,
                                           dup_prob=0.05, jitter_us=2.0)

    @pytest.mark.parametrize("kw, message", [
        (dict(loss=1.5), "--loss must be in [0, 1], got 1.5"),
        (dict(dup=-0.1), "--dup must be in [0, 1], got -0.1"),
        (dict(jitter=-1.0), "--jitter must be >= 0, got -1"),
        (dict(timeout=0.0), "--timeout must be > 0, got 0"),
        (dict(retries=-1), "--retries must be >= 0, got -1"),
        (dict(procs=0), "--procs must be >= 1, got 0"),
    ])
    def test_legacy_one_line_messages(self, kw, message):
        with pytest.raises(ValueError) as err:
            RunConfig.from_args(self.args(**kw))
        assert str(err.value) == message

    def test_loss_list_rejected_without_override(self):
        with pytest.raises(ValueError,
                           match="--loss must be a single rate here"):
            RunConfig.from_args(self.args(loss=[0.0, 0.1]))

    def test_loss_override_beats_args(self):
        config = RunConfig.from_args(self.args(loss=[0.0, 0.1]),
                                     loss=0.1)
        assert config.faults.loss_prob == 0.1

    def test_n_procs_override(self):
        config = RunConfig.from_args(self.args(procs=[1, 2, 4]),
                                     n_procs=4)
        assert config.n_procs == 4

    def test_recorder_passthrough(self):
        recorder = TimelineRecorder()
        config = RunConfig.from_args(self.args(), recorder=recorder)
        assert config.recorder is recorder


class TestSimulateShim:
    @pytest.fixture(scope="class")
    def rubik(self):
        return rubik_section()

    def test_sprawl_keywords_warn_but_match(self, rubik):
        faults = FaultModel(seed=3, loss_prob=0.05)
        with pytest.warns(DeprecationWarning,
                          match="build a RunConfig and call "
                                "simulate_config"):
            shimmed = simulate(rubik, n_procs=8, faults=faults)
        direct = simulate_config(rubik, RunConfig(n_procs=8,
                                                  faults=faults))
        assert shimmed == direct

    def test_mapping_keyword_warns(self, rubik):
        with pytest.warns(DeprecationWarning):
            simulate(rubik, n_procs=4,
                     mapping=RoundRobinMapping(n_procs=4))

    def test_short_form_stays_silent(self, rubik):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            short = simulate(rubik, n_procs=8, overheads=TABLE_5_1[1])
        assert short == simulate_config(
            rubik, RunConfig(n_procs=8, overheads=TABLE_5_1[1]))

    def test_zero_fault_config_bit_identical_to_short_form(self, rubik):
        """The acceptance pin: a plain RunConfig run equals the
        pre-redesign ``simulate()`` output, field for field."""
        old = simulate(rubik, n_procs=16, overheads=TABLE_5_1[2])
        new = simulate_config(rubik, RunConfig(n_procs=16,
                                               overheads=TABLE_5_1[2]))
        assert old == new
        assert old.total_us == new.total_us
        assert ZERO_OVERHEADS == RunConfig().overheads

"""Tests for the trace text format (round trips, error handling)."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops5 import parse_program
from repro.rete.hashing import BucketKey
from repro.trace import (CycleTrace, SectionTrace, TraceActivation,
                         TraceFormatError, dumps_trace, loads_trace,
                         read_trace, record_program, save_trace,
                         validate_trace)
from repro.trace.format import _decode_value, _encode_value

PROGRAM = """
(startup (make stage ^n 1) (make item ^v 1) (make item ^v 2))
(p bump (stage ^n <k>) (item ^v <k>) --> (remove 2) (modify 1 ^n 2))
"""


def sample_trace():
    return record_program(parse_program(PROGRAM), "sample",
                          drop_setup_cycle=False)


class TestValueEncoding:
    @pytest.mark.parametrize("value", [
        0, 42, -7, 2.5, -0.125, "blue", "two words", "a%b",
        "tab\there", "line\nbreak", "", "n:tricky", "1",
    ])
    def test_roundtrip(self, value):
        assert _decode_value(_encode_value(value)) == value

    def test_symbol_one_vs_number_one(self):
        assert _encode_value("1") != _encode_value(1)

    def test_bad_tag_raises(self):
        with pytest.raises(TraceFormatError):
            _decode_value("z:oops")

    def test_missing_colon_raises(self):
        with pytest.raises(TraceFormatError):
            _decode_value("nope")


class TestRoundTrip:
    def test_recorded_trace_roundtrips(self):
        trace = sample_trace()
        text = dumps_trace(trace)
        back = loads_trace(text)
        assert back.name == trace.name
        assert len(back.cycles) == len(trace.cycles)
        for c1, c2 in zip(trace, back):
            assert c1.index == c2.index
            assert len(c1) == len(c2)
            for a1, a2 in zip(c1, c2):
                assert a1 == a2

    def test_roundtrip_validates(self):
        back = loads_trace(dumps_trace(sample_trace()))
        assert validate_trace(back) == []

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        back = read_trace(path)
        assert dumps_trace(back) == dumps_trace(trace)

    def test_section_name_with_spaces(self):
        trace = SectionTrace(name="a section name")
        assert loads_trace(dumps_trace(trace)).name == "a section name"


class TestErrors:
    def test_missing_magic(self):
        with pytest.raises(TraceFormatError):
            loads_trace("section foo\n")

    def test_missing_section(self):
        with pytest.raises(TraceFormatError):
            loads_trace("#repro-trace 1\ncycle 0\n")

    def test_activation_before_cycle(self):
        with pytest.raises(TraceFormatError):
            loads_trace("#repro-trace 1\nsection s\n"
                        "a 1 - 2 join left + k :\n")

    def test_unknown_line(self):
        with pytest.raises(TraceFormatError):
            loads_trace("#repro-trace 1\nsection s\nwhat is this\n")

    def test_bad_kind(self):
        with pytest.raises(TraceFormatError):
            loads_trace("#repro-trace 1\nsection s\ncycle 0\n"
                        "a 1 - 2 frob left + k :\n")

    def test_bad_cycle_header(self):
        with pytest.raises(TraceFormatError):
            loads_trace("#repro-trace 1\nsection s\ncycle x\n")

    def test_comments_and_blanks_ignored(self):
        trace = loads_trace(
            "#repro-trace 1\nsection s\n\n# a comment\ncycle 3\n"
            "a 1 - 2 join left + k n:1 :\n")
        assert trace.cycles[0].index == 3
        [act] = list(trace.cycles[0])
        assert act.key == BucketKey(2, (1,))


values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(min_size=0, max_size=12),
)


@given(vals=st.lists(values, max_size=4),
       tag=st.sampled_from("+-"),
       side=st.sampled_from(["left", "right"]),
       node=st.integers(min_value=1, max_value=99))
def test_single_activation_roundtrip_property(vals, tag, side, node):
    cycle = CycleTrace(index=1)
    cycle.add(TraceActivation(
        act_id=1, parent_id=None, node_id=node, kind="join", side=side,
        tag=tag, key=BucketKey(node, tuple(vals)), successors=()))
    trace = SectionTrace(name="prop", cycles=[cycle])
    back = loads_trace(dumps_trace(trace))
    [act] = list(back.cycles[0])
    assert act.key.values == tuple(vals)
    assert act.tag == tag and act.side == side

"""Unit tests for wmes and the working memory."""

import pytest

from repro.ops5.errors import ExecutionError
from repro.ops5.values import NIL
from repro.ops5.wme import WME, WorkingMemory


class TestWME:
    def test_get_present_attribute(self):
        w = WME(1, "block", {"color": "blue"})
        assert w.get("color") == "blue"

    def test_get_missing_attribute_is_nil(self):
        w = WME(1, "block", {})
        assert w.get("color") == NIL

    def test_str_renders_ops5_syntax(self):
        w = WME(1, "block", {"color": "blue", "name": "b1"})
        assert str(w) == "(block ^color blue ^name b1)"

    def test_with_updates_overrides_and_keeps(self):
        w = WME(1, "block", {"color": "blue", "name": "b1"})
        w2 = w.with_updates({"color": "red"}, wme_id=9, timestamp=5)
        assert w2.get("color") == "red"
        assert w2.get("name") == "b1"
        assert w2.wme_id == 9 and w2.timestamp == 5
        # original untouched
        assert w.get("color") == "blue"


class TestWorkingMemory:
    def test_add_assigns_unique_increasing_ids(self):
        wm = WorkingMemory()
        a = wm.add("block", {})
        b = wm.add("block", {})
        assert a.wme_id != b.wme_id
        assert b.wme_id > a.wme_id

    def test_timestamps_increase(self):
        wm = WorkingMemory()
        a = wm.add("block", {})
        b = wm.add("block", {})
        assert b.timestamp > a.timestamp

    def test_len_and_contains(self):
        wm = WorkingMemory()
        a = wm.add("block", {})
        assert len(wm) == 1
        assert a.wme_id in wm

    def test_remove_returns_wme(self):
        wm = WorkingMemory()
        a = wm.add("block", {"name": "b1"})
        removed = wm.remove(a.wme_id)
        assert removed == a
        assert len(wm) == 0

    def test_remove_missing_raises(self):
        wm = WorkingMemory()
        with pytest.raises(ExecutionError):
            wm.remove(99)

    def test_double_remove_raises(self):
        wm = WorkingMemory()
        a = wm.add("block", {})
        wm.remove(a.wme_id)
        with pytest.raises(ExecutionError):
            wm.remove(a.wme_id)

    def test_modify_is_delete_then_add(self):
        """Modify semantics matter: they create the paper's
        multiple-modify effect, so the old wme must go away entirely and
        the new one must carry a fresh id and newer timestamp."""
        wm = WorkingMemory()
        a = wm.add("block", {"color": "blue", "name": "b1"})
        old, new = wm.modify(a.wme_id, {"color": "red"})
        assert old == a
        assert new.wme_id != a.wme_id
        assert new.timestamp > a.timestamp
        assert new.get("color") == "red"
        assert new.get("name") == "b1"
        assert a.wme_id not in wm
        assert new.wme_id in wm

    def test_get_returns_none_for_removed(self):
        wm = WorkingMemory()
        a = wm.add("block", {})
        wm.remove(a.wme_id)
        assert wm.get(a.wme_id) is None

    def test_snapshot_is_tuple(self):
        wm = WorkingMemory()
        wm.add("block", {})
        snap = wm.snapshot()
        assert isinstance(snap, tuple)
        assert len(snap) == 1

    def test_clock_advances_per_action_not_per_cycle(self):
        wm = WorkingMemory()
        c0 = wm.clock
        wm.add("a", {})
        wm.add("b", {})
        assert wm.clock == c0 + 2

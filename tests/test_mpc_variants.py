"""Tests for the mapping variants: processor pairs (Section 3.1),
the replication/master continuum (Section 6) and termination-detection
models (Section 4 future work)."""

import pytest

from repro.mpc import (OverheadModel, TABLE_5_1, TerminationScheme,
                       ZERO_OVERHEADS, apply_termination, detection_delay,
                       simulate, simulate_base, simulate_master_copy,
                       simulate_pairs, simulate_replicated, speedup,
                       termination_overhead_fraction)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def act(i, node, side="right", parent=None, succ=(), kind="join",
        vals=()):
    return TraceActivation(act_id=i, parent_id=parent, node_id=node,
                           kind=kind, side=side, tag="+",
                           key=BucketKey(node, tuple(vals)),
                           successors=tuple(succ))


def fanout_trace(n_roots=24):
    cycle = CycleTrace(index=1)
    i = 1
    for n in range(n_roots):
        cycle.add(act(i, node=n + 1, side="right", succ=(i + 1,)))
        cycle.add(act(i + 1, node=100 + n, side="left", parent=i))
        i += 2
    return SectionTrace(name="t", cycles=[cycle])


class TestProcessorPairs:
    def test_pairs_speed_up_independent_work(self):
        trace = fanout_trace()
        base = simulate_base(trace)
        run = simulate_pairs(trace, n_pairs=8)
        assert speedup(base, run) > 3.0

    def test_pairs_report_double_processor_count(self):
        run = simulate_pairs(fanout_trace(), n_pairs=4)
        assert run.n_procs == 8
        assert len(run.cycles[0].proc_busy_us) == 8

    def test_micro_task_overlap_beats_merged_at_same_partitions(self):
        """A pair overlaps store and generate, so at the same number of
        hash partitions (n pairs vs n merged processors) pairs are at
        least as fast at zero overheads."""
        trace = fanout_trace()
        for n in (2, 4, 8):
            merged = simulate(trace, n_procs=n)
            paired = simulate_pairs(trace, n_pairs=n)
            assert paired.total_us <= merged.total_us + 1e-6

    def test_merged_wins_at_same_cpu_budget_with_overheads(self):
        """The Section 3.2 rationale for merging: with few processors
        and real overheads, a merged mapping uses the CPUs better than
        pairs (which pay the intra-pair forward on every activation)."""
        trace = fanout_trace()
        overheads = TABLE_5_1[3]
        merged = simulate(trace, n_procs=8, overheads=overheads)
        paired = simulate_pairs(trace, n_pairs=4, overheads=overheads)
        assert merged.total_us < paired.total_us

    def test_pairs_count_messages(self):
        run = simulate_pairs(fanout_trace(), n_pairs=4)
        # At least the broadcast + relays + one forward per activation.
        assert run.n_messages > 4

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            simulate_pairs(fanout_trace(), n_pairs=0)

    def test_rejects_mapping_mismatch(self):
        from repro.mpc import RoundRobinMapping
        with pytest.raises(ValueError):
            simulate_pairs(fanout_trace(), n_pairs=4,
                           mapping=RoundRobinMapping(n_procs=8))


class TestContinuum:
    def test_distributed_beats_both_extremes(self):
        """The paper positions its mapping near the centre of the
        continuum; on a bucket-friendly trace it must beat both the
        fully replicated and the master-copy extreme."""
        trace = fanout_trace(32)
        base = simulate_base(trace)
        distributed = speedup(base, simulate(trace, n_procs=16))
        replicated = speedup(base, simulate_replicated(trace, 16))
        master = speedup(base, simulate_master_copy(trace, 16))
        assert distributed > replicated
        assert distributed > master

    def test_replicated_store_cost_scales_with_procs(self):
        """Replication applies every store on every processor, so at
        zero overheads the busy time grows with the machine."""
        trace = fanout_trace()
        small = simulate_replicated(trace, 2)
        large = simulate_replicated(trace, 16)
        busy_small = sum(sum(c.proc_busy_us) for c in small.cycles)
        busy_large = sum(sum(c.proc_busy_us) for c in large.cycles)
        assert busy_large > 2 * busy_small

    def test_master_copy_master_is_bottleneck(self):
        trace = fanout_trace(32)
        run = simulate_master_copy(trace, 8)
        busy = [sum(c.proc_busy_us[p] for c in run.cycles)
                for p in range(8)]
        assert busy[0] == max(busy)

    def test_single_processor_degenerate_cases_run(self):
        trace = fanout_trace(4)
        assert simulate_replicated(trace, 1).total_us > 0
        assert simulate_master_copy(trace, 1).total_us > 0

    def test_extremes_reject_zero_procs(self):
        with pytest.raises(ValueError):
            simulate_replicated(fanout_trace(), 0)
        with pytest.raises(ValueError):
            simulate_master_copy(fanout_trace(), 0)

    def test_replicated_handles_terminals(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right", succ=(2,)))
        cycle.add(act(2, node=9, kind="terminal", side="left", parent=1))
        trace = SectionTrace(name="t", cycles=[cycle])
        run = simulate_replicated(trace, 4,
                                  overheads=TABLE_5_1[1])
        assert run.total_us > 0


class TestTermination:
    OVH = OverheadModel(send_us=5, recv_us=3)

    def test_ideal_is_free(self):
        assert detection_delay(TerminationScheme.IDEAL, 32, self.OVH) \
            == 0.0

    def test_zero_overheads_make_everything_free_except_hops(self):
        assert detection_delay(TerminationScheme.BARRIER, 32,
                               ZERO_OVERHEADS) == 0.0

    def test_barrier_scales_linearly_in_recv(self):
        d16 = detection_delay(TerminationScheme.BARRIER, 16, self.OVH)
        d32 = detection_delay(TerminationScheme.BARRIER, 32, self.OVH)
        assert d32 - d16 == pytest.approx(16 * self.OVH.recv_us)

    def test_ring_scales_linearly(self):
        d8 = detection_delay(TerminationScheme.RING, 8, self.OVH)
        d16 = detection_delay(TerminationScheme.RING, 16, self.OVH)
        assert d16 > d8
        hop = 5 + 0.5 + 3
        assert d8 == pytest.approx(9 * hop)

    def test_tree_scales_logarithmically(self):
        d4 = detection_delay(TerminationScheme.TREE, 4, self.OVH)
        d32 = detection_delay(TerminationScheme.TREE, 32, self.OVH)
        hop = 5 + 0.5 + 3
        assert d4 == pytest.approx(3 * hop)   # 2 levels + report
        assert d32 == pytest.approx(6 * hop)  # 5 levels + report

    def test_tree_beats_ring_at_scale(self):
        assert detection_delay(TerminationScheme.TREE, 32, self.OVH) < \
            detection_delay(TerminationScheme.RING, 32, self.OVH)

    def test_apply_termination_adds_per_cycle(self):
        trace = fanout_trace()
        run = simulate(trace, n_procs=8, overheads=self.OVH)
        augmented = apply_termination(run, TerminationScheme.RING,
                                      self.OVH)
        delay = detection_delay(TerminationScheme.RING, 8, self.OVH)
        assert augmented.total_us == pytest.approx(
            run.total_us + len(run.cycles) * delay)

    def test_apply_termination_does_not_mutate_original(self):
        trace = fanout_trace()
        run = simulate(trace, n_procs=8, overheads=self.OVH)
        before = run.total_us
        apply_termination(run, TerminationScheme.RING, self.OVH)
        assert run.total_us == before

    def test_overhead_fraction_bounded(self):
        trace = fanout_trace()
        run = simulate(trace, n_procs=8, overheads=self.OVH)
        frac = termination_overhead_fraction(
            run, TerminationScheme.RING, self.OVH)
        assert 0.0 < frac < 0.5

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            detection_delay(TerminationScheme.RING, 0, self.OVH)

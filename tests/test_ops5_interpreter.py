"""Integration tests for the MRA interpreter (with the naive matcher)."""

import pytest

from repro.ops5 import (ExecutionError, Interpreter, Strategy,
                        parse_production, parse_program, run_program)


class TestBasicExecution:
    def test_single_firing_and_quiescence(self):
        program = parse_program("""
            (startup (make a))
            (p once (a) --> (remove 1))
        """)
        result = run_program(program)
        assert result.cycles == 1
        assert result.quiesced
        assert not result.halted

    def test_halt_stops_immediately(self):
        program = parse_program("""
            (startup (make a) (make a))
            (p stop (a) --> (halt))
        """)
        result = run_program(program)
        assert result.cycles == 1
        assert result.halted
        assert not result.quiesced

    def test_refraction_prevents_refiring(self):
        # The rule does not change WM, so without refraction it would
        # loop forever on the same instantiation.
        program = parse_program("""
            (startup (make a))
            (p noop (a) --> (write fired))
        """)
        result = run_program(program, max_cycles=50)
        assert result.cycles == 1
        assert result.quiesced

    def test_max_cycles_cuts_off(self):
        # counter increments forever via modify; each new wme is a new
        # instantiation, so refraction does not stop it.
        program = parse_program("""
            (startup (make counter ^n 0))
            (p bump (counter ^n <n>) --> (remove 1) (make counter ^n 1))
        """)
        # remove+make of identical attrs creates fresh wme ids each time.
        result = run_program(program, max_cycles=7)
        assert result.cycles == 7
        assert not result.quiesced and not result.halted


class TestChainsAndActions:
    def test_make_chain(self):
        program = parse_program("""
            (startup (make stage ^n one))
            (p s1 (stage ^n one) --> (remove 1) (make stage ^n two))
            (p s2 (stage ^n two) --> (remove 1) (make stage ^n three))
            (p s3 (stage ^n three) --> (remove 1) (make done))
        """)
        result = run_program(program)
        assert [f.production_name for f in result.firings] == \
            ["s1", "s2", "s3"]

    def test_modify_updates_attribute(self):
        program = parse_program("""
            (startup (make counter ^n 0))
            (p to-one (counter ^n 0) --> (modify 1 ^n 1))
        """)
        interp = Interpreter()
        interp.load_program(program)
        interp.run()
        wmes = list(interp.wm)
        assert len(wmes) == 1
        assert wmes[0].get("n") == 1

    def test_write_output_captured(self):
        program = parse_program("""
            (startup (make greeting ^text hello))
            (p say (greeting ^text <t>) --> (write <t> world (crlf))
                                            (remove 1))
        """)
        result = run_program(program)
        assert result.output == "hello world\n"

    def test_bind_then_make(self):
        program = parse_program("""
            (startup (make src ^v 42))
            (p copy (src ^v <x>) --> (bind <y> <x>) (make dst ^v <y>)
                                     (remove 1))
        """)
        interp = Interpreter()
        interp.load_program(program)
        interp.run()
        [dst] = [w for w in interp.wm if w.cls == "dst"]
        assert dst.get("v") == 42

    def test_remove_same_wme_twice_in_one_firing_is_noop(self):
        program = parse_program("""
            (startup (make a ^v 1))
            (p r (a ^v <x>) (a ^v <x>) --> (remove 1 2))
        """)
        interp = Interpreter()
        interp.load_program(program)
        result = interp.run()
        # One wme matched both CEs; second remove is silently skipped.
        assert result.cycles == 1
        assert len(interp.wm) == 0


class TestNegationDynamics:
    def test_negation_enables_after_removal(self):
        program = parse_program("""
            (startup (make goal) (make blocker))
            (p clear (blocker) --> (remove 1))
            (p act (goal) -(blocker) --> (remove 1) (make acted))
        """)
        result = run_program(program)
        names = [f.production_name for f in result.firings]
        assert "act" in names
        assert names.index("clear") < names.index("act")

    def test_negation_respected_while_blocker_present(self):
        program = parse_program("""
            (startup (make goal) (make blocker))
            (p act (goal) -(blocker) --> (make acted))
        """)
        result = run_program(program)
        assert result.cycles == 0


class TestStrategies:
    def _program(self):
        return parse_program("""
            (p react-new (item ^tag new) --> (remove 1))
            (p react-old (item ^tag old) --> (remove 1))
        """)

    def test_lex_fires_most_recent_first(self):
        interp = Interpreter(strategy=Strategy.LEX)
        interp.load_program(self._program())
        interp.add_wme("item", {"tag": "old"})
        interp.add_wme("item", {"tag": "new"})
        record = interp.step()
        assert record.production_name == "react-new"

    def test_mea_uses_first_ce(self):
        program = parse_program("""
            (p go (goal ^is <g>) (item ^tag <g>) --> (remove 2))
        """)
        interp = Interpreter(strategy=Strategy.MEA)
        interp.load_program(program)
        interp.add_wme("item", {"tag": "x"})
        interp.add_wme("goal", {"is": "x"})
        interp.add_wme("item", {"tag": "x"})
        record = interp.step()
        assert record is not None


class TestExternalWMManipulation:
    def test_add_and_remove_wme_via_interpreter(self):
        interp = Interpreter()
        interp.add_production(parse_production("(p r (a) --> (halt))"))
        w = interp.add_wme("a", {})
        assert len(interp.conflict_set()) == 1
        interp.remove_wme(w.wme_id)
        assert len(interp.conflict_set()) == 0

    def test_delta_listener_sees_changes(self):
        seen = []
        interp = Interpreter()
        interp.delta_listeners.append(
            lambda cycle, deltas: seen.extend(
                (cycle, tag, w.cls) for tag, w in deltas))
        interp.add_production(parse_production(
            "(p r (a) --> (remove 1) (make b))"))
        interp.add_wme("a", {})
        interp.run()
        assert (0, "+", "a") in seen          # external add, cycle 0
        assert (1, "-", "a") in seen          # firing, cycle 1
        assert (1, "+", "b") in seen

"""Tests for the MPC discrete-event simulator: exact hand-computed
timings, conservation laws, and overhead behaviour."""

import pytest

from repro.mpc import (CostModel, ExplicitMapping, OverheadModel,
                       RoundRobinMapping, RunConfig, ZERO_OVERHEADS,
                       bucket_work, simulate, simulate_base,
                       simulate_config, speedup)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def act(i, node, side="right", tag="+", parent=None, succ=(), kind="join",
        vals=()):
    return TraceActivation(act_id=i, parent_id=parent, node_id=node,
                           kind=kind, side=side, tag=tag,
                           key=BucketKey(node, tuple(vals)),
                           successors=tuple(succ))


def section(*cycles):
    return SectionTrace(name="t", cycles=list(cycles))


def fanout_trace(n_roots=20):
    """Independent right roots, each generating one left successor."""
    cycle = CycleTrace(index=1)
    i = 1
    for n in range(n_roots):
        cycle.add(act(i, node=n + 1, side="right", succ=(i + 1,)))
        cycle.add(act(i + 1, node=100 + n, side="left", parent=i))
        i += 2
    return section(cycle)


class TestExactTimings:
    def test_base_case_arithmetic(self):
        # 30 (constant tests) + 20*(16 store + 16 gen) + 20*32 left store
        base = simulate_base(fanout_trace(20))
        assert base.total_us == pytest.approx(30 + 20 * 32 + 20 * 32)

    def test_single_root_no_successors(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right"))
        base = simulate_base(section(cycle))
        assert base.total_us == pytest.approx(30 + 16)

    def test_left_root_costs_more(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="left"))
        base = simulate_base(section(cycle))
        assert base.total_us == pytest.approx(30 + 32)

    def test_deletes_cost_like_adds(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right", tag="-"))
        base = simulate_base(section(cycle))
        assert base.total_us == pytest.approx(30 + 16)

    def test_empty_cycle_costs_constant_tests_plus_broadcast(self):
        trace = section(CycleTrace(index=1))
        base = simulate_base(trace)
        assert base.total_us == pytest.approx(30)
        loaded = simulate(trace, n_procs=4,
                          overheads=OverheadModel(send_us=5, recv_us=3))
        assert loaded.total_us == pytest.approx(5 + 0.5 + 3 + 30)

    def test_cycles_serialize(self):
        c1 = CycleTrace(index=1)
        c1.add(act(1, node=1, side="right"))
        c2 = CycleTrace(index=2)
        c2.add(act(1, node=2, side="right"))
        base = simulate_base(section(c1, c2))
        assert base.total_us == pytest.approx(2 * (30 + 16))

    def test_terminal_successor_costs_generation_only_at_zero_overhead(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right", succ=(2,)))
        cycle.add(act(2, node=99, kind="terminal", side="left", parent=1))
        base = simulate_base(section(cycle))
        assert base.total_us == pytest.approx(30 + 16 + 16)

    def test_custom_cost_model(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="left"))
        costs = CostModel(constant_tests_us=10, left_token_us=5,
                          right_token_us=2, successor_us=1)
        base = simulate_base(section(cycle), costs=costs)
        assert base.total_us == pytest.approx(10 + 5)


class TestParallelBehaviour:
    def test_speedup_bounded_by_procs(self):
        base = simulate_base(fanout_trace())
        for p in (2, 4, 8):
            run = simulate(fanout_trace(), n_procs=p)
            assert speedup(base, run) <= p + 1e-9

    def test_one_proc_zero_overhead_is_base(self):
        trace = fanout_trace()
        base = simulate_base(trace)
        run = simulate(trace, n_procs=1, overheads=ZERO_OVERHEADS)
        assert run.total_us == pytest.approx(base.total_us)

    def test_independent_work_scales(self):
        trace = fanout_trace(64)
        base = simulate_base(trace)
        run = simulate(trace, n_procs=8)
        assert speedup(base, run) > 4.0

    def test_serial_chain_does_not_scale(self):
        # A dependency chain: each activation generates the next.
        cycle = CycleTrace(index=1)
        n = 20
        for i in range(1, n + 1):
            succ = (i + 1,) if i < n else ()
            cycle.add(act(i, node=i, side="left",
                          parent=i - 1 if i > 1 else None, succ=succ))
        trace = section(cycle)
        base = simulate_base(trace)
        run = simulate(trace, n_procs=16)
        assert speedup(base, run) < 1.5

    def test_hot_bucket_serializes(self):
        """All roots in one bucket: no parallelism available (the
        Tourney cross-product effect)."""
        cycle = CycleTrace(index=1)
        for i in range(1, 33):
            cycle.add(act(i, node=7, side="left"))
        trace = section(cycle)
        base = simulate_base(trace)
        run = simulate(trace, n_procs=16)
        assert speedup(base, run) < 1.2

    def test_work_conservation_zero_overheads(self):
        """Total busy time equals the base work (minus per-proc constant
        tests duplication) when nothing is added by communication."""
        trace = fanout_trace(16)
        run = simulate(trace, n_procs=4)
        busy = sum(sum(c.proc_busy_us) for c in run.cycles)
        base = simulate_base(trace)
        # Every processor redundantly runs the 30us constant tests.
        expected = (base.total_us - 30) + 4 * 30
        assert busy == pytest.approx(expected)

    def test_explicit_mapping_controls_placement(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right", vals=("a",)))
        cycle.add(act(2, node=1, side="right", vals=("b",)))
        trace = section(cycle)
        together = ExplicitMapping(n_procs=2, assignment={
            BucketKey(1, ("a",)): 0, BucketKey(1, ("b",)): 0})
        apart = ExplicitMapping(n_procs=2, assignment={
            BucketKey(1, ("a",)): 0, BucketKey(1, ("b",)): 1})
        t_together = simulate_config(
            trace, RunConfig(n_procs=2, mapping=together)).total_us
        t_apart = simulate_config(
            trace, RunConfig(n_procs=2, mapping=apart)).total_us
        assert t_apart < t_together

    def test_mapping_proc_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(n_procs=4, mapping=RoundRobinMapping(n_procs=8))

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            simulate(fanout_trace(), n_procs=0)


class TestOverheads:
    def test_overheads_slow_things_down(self):
        trace = fanout_trace()
        fast = simulate(trace, n_procs=8)
        slow = simulate(trace, n_procs=8,
                        overheads=OverheadModel(send_us=20, recv_us=12))
        assert slow.total_us > fast.total_us

    def test_overheads_do_not_matter_on_one_proc(self):
        """With one match processor only the broadcast is a message."""
        trace = fanout_trace()
        fast = simulate(trace, n_procs=1)
        slow = simulate(trace, n_procs=1,
                        overheads=OverheadModel(send_us=20, recv_us=12))
        # Broadcast: send 20 + latency 0.5 + recv 12 = 32.5us extra.
        assert slow.total_us == pytest.approx(fast.total_us + 32.5)

    def test_messages_counted(self):
        trace = fanout_trace(20)
        solo = simulate(trace, n_procs=1)
        multi = simulate(trace, n_procs=8)
        assert solo.n_messages == 1  # only the broadcast
        assert multi.n_messages > solo.n_messages

    def test_network_mostly_idle_at_nectar_latency(self):
        trace = fanout_trace(64)
        run = simulate(trace, n_procs=16,
                       overheads=OverheadModel(send_us=5, recv_us=3))
        assert run.network_idle_fraction() > 0.9

    def test_latency_only_delays_not_occupies(self):
        trace = fanout_trace(16)
        lat0 = simulate(trace, n_procs=4,
                        overheads=OverheadModel(latency_us=0.0))
        lat5 = simulate(trace, n_procs=4,
                        overheads=OverheadModel(latency_us=5.0))
        busy0 = sum(sum(c.proc_busy_us) for c in lat0.cycles)
        busy5 = sum(sum(c.proc_busy_us) for c in lat5.cycles)
        assert busy0 == pytest.approx(busy5)
        assert lat5.total_us >= lat0.total_us


class TestPerProcessorMetrics:
    def test_activation_counts_sum_to_trace(self):
        trace = fanout_trace(20)
        run = simulate(trace, n_procs=8)
        counted = sum(sum(c.proc_activations) for c in run.cycles)
        in_trace = sum(1 for c in trace.cycles for a in c
                       if a.kind != "terminal")
        assert counted == in_trace

    def test_left_counts_subset_of_activations(self):
        run = simulate(fanout_trace(20), n_procs=8)
        for c in run.cycles:
            for left, total in zip(c.proc_left_activations,
                                   c.proc_activations):
                assert left <= total

    def test_idle_fractions_in_range(self):
        run = simulate(fanout_trace(20), n_procs=8)
        for c in run.cycles:
            for f in c.idle_fractions():
                assert 0.0 <= f <= 1.0


class TestBucketWork:
    def test_work_matches_cost_model(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="left", succ=(2,)))
        cycle.add(act(2, node=2, side="left", parent=1))
        work = bucket_work(cycle)
        assert work[BucketKey(1, ())] == pytest.approx(32 + 16)
        assert work[BucketKey(2, ())] == pytest.approx(32)

    def test_terminals_excluded(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, side="right", succ=(2,)))
        cycle.add(act(2, node=9, kind="terminal", side="left", parent=1))
        work = bucket_work(cycle)
        assert BucketKey(9, ()) not in work

"""Golden regression tests for the EXPERIMENTS.md headline numbers.

These pin the reproduced results bit-for-bit (tight relative tolerance,
not the rounded headline): a perf refactor that changes any Figure 5-1
peak, Figure 5-2 loss, or Table 5-1/5-2 cell fails here rather than
silently shifting the reproduction.  The headline (rounded) claims from
EXPERIMENTS.md are asserted separately so the document stays honest
even if the precise pins are ever re-baselined.
"""

import pytest

from repro.mpc import TABLE_5_1, ZERO_OVERHEADS, table_5_1_rows
from repro.mpc.sweep import overhead_sweep, speedup_curve, speedup_loss
from repro.workloads import rubik_section, tourney_section, weaver_section

#: Measured once (workers=1, default costs, seed 0) and frozen.  If a
#: deliberate model change re-baselines these, update EXPERIMENTS.md in
#: the same commit.
GOLDEN_PEAKS_AT_32 = {
    "rubik": 11.967367009387573,
    "tourney": 7.543324556991983,
    "weaver": 5.14043583535109,
}
GOLDEN_LOSSES_AT_32US = {
    "rubik": 0.30619523920291547,
    "tourney": 0.4834860072274981,
    "weaver": 0.48435427233710493,
}
EXACT = dict(rel=1e-12, abs=0.0)

SECTIONS = {
    "rubik": rubik_section,
    "tourney": tourney_section,
    "weaver": weaver_section,
}


@pytest.fixture(scope="module")
def fig5_2_curves():
    """One (zero + Table 5-1) sweep per section, shared by the tests."""
    return {
        name: overhead_sweep(build(),
                             overhead_settings=(ZERO_OVERHEADS,)
                             + TABLE_5_1,
                             workers=1)
        for name, build in SECTIONS.items()
    }


class TestFig5_1:
    @pytest.mark.parametrize("name", sorted(SECTIONS))
    def test_peak_speedup_pinned(self, name):
        curve = speedup_curve(SECTIONS[name](), workers=1)
        peak_procs, peak = curve.peak()
        assert peak_procs == 32
        assert peak == pytest.approx(GOLDEN_PEAKS_AT_32[name], **EXACT)

    def test_headline_rounded_values(self):
        # EXPERIMENTS.md: 12.0x / 7.5x / 5.1x @ 32 procs.
        assert round(GOLDEN_PEAKS_AT_32["rubik"], 1) == 12.0
        assert round(GOLDEN_PEAKS_AT_32["tourney"], 1) == 7.5
        assert round(GOLDEN_PEAKS_AT_32["weaver"], 1) == 5.1

    def test_section_ordering(self):
        assert GOLDEN_PEAKS_AT_32["rubik"] \
            > GOLDEN_PEAKS_AT_32["tourney"] \
            > GOLDEN_PEAKS_AT_32["weaver"]


class TestFig5_2:
    @pytest.mark.parametrize("name", sorted(SECTIONS))
    def test_peak_speedup_loss_pinned(self, name, fig5_2_curves):
        curves = fig5_2_curves[name]
        loss = speedup_loss(curves[0], curves[-1])
        assert loss == pytest.approx(GOLDEN_LOSSES_AT_32US[name], **EXACT)

    def test_headline_rounded_values(self):
        # EXPERIMENTS.md: 31% / 48% / 48% peak-speedup loss @ 32 us.
        assert round(100 * GOLDEN_LOSSES_AT_32US["rubik"]) == 31
        assert round(100 * GOLDEN_LOSSES_AT_32US["tourney"]) == 48
        assert round(100 * GOLDEN_LOSSES_AT_32US["weaver"]) == 48

    def test_rubik_least_affected(self, fig5_2_curves):
        # Only left activations travel as messages; Rubik is 28% left.
        losses = {name: speedup_loss(curves[0], curves[-1])
                  for name, curves in fig5_2_curves.items()}
        assert losses["rubik"] < losses["weaver"]
        assert losses["rubik"] < losses["tourney"]

    def test_loss_grows_with_overheads(self, fig5_2_curves):
        for curves in fig5_2_curves.values():
            losses = [speedup_loss(curves[0], c) for c in curves[1:]]
            assert losses == sorted(losses)


class TestTable5_1:
    def test_cells_exact(self):
        assert [(m.send_us, m.recv_us, m.total_us) for m in TABLE_5_1] \
            == [(0.0, 0.0, 0.0), (5.0, 3.0, 8.0),
                (10.0, 6.0, 16.0), (20.0, 12.0, 32.0)]

    def test_nectar_latency_everywhere(self):
        assert all(m.latency_us == 0.5 for m in TABLE_5_1)

    def test_printable_rows(self):
        rows = table_5_1_rows()
        assert rows[0] == ("Run 1", 0.0, 0.0, 0.0)
        assert rows[3] == ("Run 4", 20.0, 12.0, 32.0)


class TestTable5_2:
    @pytest.mark.parametrize("name,left,right", [
        ("rubik", 2388, 6114),
        ("tourney", 10667, 83),
        ("weaver", 338, 78),
    ])
    def test_activation_counts_exact(self, name, left, right):
        stats = SECTIONS[name]().stats()
        assert stats.left == left
        assert stats.right == right
        assert stats.total == left + right

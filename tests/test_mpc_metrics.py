"""Unit tests for SimResult/CycleResult metrics and Rete stats helpers."""

import pytest

from repro.mpc import CycleResult, SimResult, speedup, speedup_series
from repro.rete import ActivationCounter


def cycle(makespan, busy, left=None, msgs=0, net=0.0):
    return CycleResult(index=1, makespan_us=makespan,
                       proc_busy_us=list(busy),
                       proc_activations=[int(b) for b in busy],
                       proc_left_activations=left or [0] * len(busy),
                       n_messages=msgs, network_busy_us=net,
                       control_busy_us=0.0)


class TestCycleResult:
    def test_idle_fractions(self):
        c = cycle(100.0, [100.0, 50.0])
        assert c.idle_fractions() == [0.0, 0.5]

    def test_idle_fractions_zero_makespan(self):
        c = cycle(0.0, [0.0, 0.0])
        assert c.idle_fractions() == [0.0, 0.0]

    def test_idle_clamped_nonnegative(self):
        c = cycle(10.0, [15.0])  # busy exceeding makespan: clamp
        assert c.idle_fractions() == [0.0]

    def test_n_procs(self):
        assert cycle(1.0, [1, 2, 3]).n_procs == 3


class TestSimResult:
    def test_total_sums_cycles(self):
        r = SimResult(trace_name="t", n_procs=2,
                      cycles=[cycle(10.0, [5, 5]), cycle(20.0, [9, 9])])
        assert r.total_us == 30.0

    def test_messages_sum(self):
        r = SimResult(trace_name="t", n_procs=1,
                      cycles=[cycle(1.0, [1], msgs=3),
                              cycle(1.0, [1], msgs=4)])
        assert r.n_messages == 7

    def test_average_idle_fraction(self):
        r = SimResult(trace_name="t", n_procs=2,
                      cycles=[cycle(10.0, [10.0, 0.0])])
        assert r.average_idle_fraction() == pytest.approx(0.5)

    def test_average_idle_empty(self):
        r = SimResult(trace_name="t", n_procs=2, cycles=[])
        assert r.average_idle_fraction() == 0.0

    def test_network_utilization(self):
        r = SimResult(trace_name="t", n_procs=2,
                      cycles=[cycle(100.0, [1, 1], net=5.0)])
        assert r.network_utilization() == pytest.approx(0.05)
        assert r.network_idle_fraction() == pytest.approx(0.95)

    def test_network_utilization_capped(self):
        r = SimResult(trace_name="t", n_procs=2,
                      cycles=[cycle(1.0, [1, 1], net=50.0)])
        assert r.network_utilization() == 1.0

    def test_left_token_distribution(self):
        r = SimResult(trace_name="t", n_procs=2,
                      cycles=[cycle(1.0, [1, 1], left=[3, 7])])
        assert r.left_token_distribution(0) == [3, 7]


class TestSpeedupHelpers:
    def base(self, total):
        return SimResult(trace_name="t", n_procs=1,
                         cycles=[cycle(total, [total])])

    def test_speedup(self):
        assert speedup(self.base(100.0), self.base(25.0)) == 4.0

    def test_speedup_rejects_degenerate(self):
        with pytest.raises(ValueError):
            speedup(self.base(100.0),
                    SimResult(trace_name="t", n_procs=1, cycles=[]))

    def test_speedup_series(self):
        base = self.base(100.0)
        runs = [self.base(50.0), self.base(20.0)]
        assert speedup_series(base, runs) == [2.0, 5.0]


class TestActivationCounter:
    def make_event(self, kind="join", side="left", n_succ=2):
        from repro.rete import ActivationEvent, BucketKey
        return ActivationEvent(act_id=1, parent_id=None, node_id=3,
                               node_label="x", node_kind=kind,
                               side=side, tag="+",
                               key=BucketKey(3, ()),
                               n_successors=n_succ)

    def test_counts_sides(self):
        counter = ActivationCounter()
        counter(self.make_event(side="left"))
        counter(self.make_event(side="right"))
        assert counter.left == 1 and counter.right == 1
        assert counter.total == 2

    def test_terminal_counted_separately(self):
        counter = ActivationCounter()
        counter(self.make_event(kind="terminal"))
        assert counter.total == 0
        assert counter.terminal == 1

    def test_successors_accumulated(self):
        counter = ActivationCounter()
        counter(self.make_event(n_succ=3))
        counter(self.make_event(n_succ=4))
        assert counter.successors == 7

    def test_left_fraction_and_summary(self):
        counter = ActivationCounter()
        counter(self.make_event(side="left"))
        counter(self.make_event(side="right"))
        counter(self.make_event(side="right"))
        counter(self.make_event(side="right"))
        assert counter.left_fraction() == pytest.approx(0.25)
        assert "25%" in counter.summary()

    def test_empty_counter(self):
        counter = ActivationCounter()
        assert counter.left_fraction() == 0.0
        assert "total=0" in counter.summary()

    def test_by_node_tally(self):
        counter = ActivationCounter()
        counter(self.make_event())
        counter(self.make_event())
        assert counter.by_node == {3: 2}

"""Unit tests for conflict resolution (LEX / MEA / refraction)."""

import pytest

from repro.ops5 import Instantiation, Strategy, parse_production, select
from repro.ops5.wme import WME


def inst(production, *wmes):
    return Instantiation(production=production, wmes=tuple(wmes),
                         bindings={})


@pytest.fixture
def p_one():
    return parse_production("(p one (a) --> (halt))")


@pytest.fixture
def p_two():
    return parse_production("(p two (a) (b) --> (halt))")


@pytest.fixture
def p_specific():
    return parse_production("(p specific (a ^v 1 ^w 2) --> (halt))")


class TestLEX:
    def test_recency_wins(self, p_one):
        old = inst(p_one, WME(1, "a", {}, timestamp=1))
        new = inst(p_one, WME(2, "a", {}, timestamp=9))
        assert select([old, new], Strategy.LEX) is new

    def test_recency_compares_sorted_descending(self, p_two):
        # {9, 1} vs {5, 4}: 9 > 5, so the first wins even though its
        # second tag is older.
        a = inst(p_two, WME(1, "a", {}, timestamp=9),
                 WME(2, "b", {}, timestamp=1))
        b = inst(p_two, WME(3, "a", {}, timestamp=5),
                 WME(4, "b", {}, timestamp=4))
        assert select([a, b], Strategy.LEX) is a

    def test_prefix_equal_longer_wins(self, p_one, p_two):
        w = WME(1, "a", {}, timestamp=5)
        shorter = inst(p_one, w)
        longer = inst(p_two, w, WME(2, "b", {}, timestamp=3))
        # longer's stamps (5,3) vs shorter's (5,): first element ties,
        # 3 beats exhaustion.
        assert select([shorter, longer], Strategy.LEX) is longer

    def test_specificity_breaks_recency_tie(self, p_one, p_specific):
        w = WME(1, "a", {"v": 1, "w": 2}, timestamp=5)
        plain = inst(p_one, w)
        specific = inst(p_specific, w)
        assert select([plain, specific], Strategy.LEX) is specific

    def test_empty_conflict_set(self):
        assert select([], Strategy.LEX) is None

    def test_deterministic_final_tiebreak(self, p_one):
        w = WME(1, "a", {}, timestamp=5)
        p_zzz = parse_production("(p zzz (a) --> (halt))")
        a = inst(p_one, w)
        b = inst(p_zzz, w)
        # Same recency, same specificity: name order decides, stably.
        assert select([a, b], Strategy.LEX) is select([b, a], Strategy.LEX)


class TestMEA:
    def test_first_ce_recency_dominates(self, p_two):
        # LEX would pick `a` (has the most recent tag overall); MEA must
        # pick `b` because its FIRST-CE wme is more recent.
        a = inst(p_two, WME(1, "a", {}, timestamp=2),
                 WME(2, "b", {}, timestamp=9))
        b = inst(p_two, WME(3, "a", {}, timestamp=5),
                 WME(4, "b", {}, timestamp=1))
        assert select([a, b], Strategy.LEX) is a
        assert select([a, b], Strategy.MEA) is b

    def test_falls_back_to_lex_on_first_ce_tie(self, p_two):
        w_first = WME(1, "a", {}, timestamp=5)
        a = inst(p_two, w_first, WME(2, "b", {}, timestamp=2))
        b = inst(p_two, w_first, WME(3, "b", {}, timestamp=7))
        assert select([a, b], Strategy.MEA) is b


class TestRefraction:
    def test_fired_keys_skipped(self, p_one):
        w = WME(1, "a", {}, timestamp=5)
        i = inst(p_one, w)
        assert select([i], Strategy.LEX, fired={i.key()}) is None

    def test_key_distinguishes_wmes(self, p_one):
        i1 = inst(p_one, WME(1, "a", {}, timestamp=1))
        i2 = inst(p_one, WME(2, "a", {}, timestamp=1))
        assert i1.key() != i2.key()

    def test_key_distinguishes_productions(self, p_one):
        other = parse_production("(p other (a) --> (halt))")
        w = WME(1, "a", {})
        assert inst(p_one, w).key() != inst(other, w).key()


class TestInstantiationHelpers:
    def test_wme_for_ce_positive(self, p_two):
        wa, wb = WME(1, "a", {}), WME(2, "b", {})
        i = inst(p_two, wa, wb)
        assert i.wme_for_ce(1) is wa
        assert i.wme_for_ce(2) is wb

    def test_wme_for_ce_negated_returns_none(self):
        p = parse_production("(p r (a) -(b) --> (halt))")
        i = inst(p, WME(1, "a", {}))
        assert i.wme_for_ce(2) is None

    def test_wme_for_ce_skips_negated_positions(self):
        p = parse_production("(p r (a) -(b) (c) --> (halt))")
        wa, wc = WME(1, "a", {}), WME(2, "c", {})
        i = inst(p, wa, wc)
        assert i.wme_for_ce(3) is wc

"""Tests for load metrics and report formatting."""

import pytest

from repro.analysis import (aggregate, alternation_score, bar_chart,
                            coefficient_of_variation, curve_plot,
                            format_table, max_over_mean, mean, variance)


class TestBasicStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_variance_constant(self):
        assert variance([5, 5, 5]) == 0.0

    def test_variance_known(self):
        assert variance([0, 4]) == 4.0

    def test_cv_even(self):
        assert coefficient_of_variation([3, 3, 3]) == 0.0

    def test_cv_zero_mean(self):
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_max_over_mean_even(self):
        assert max_over_mean([4, 4]) == 1.0

    def test_max_over_mean_skewed(self):
        assert max_over_mean([0, 8]) == 2.0

    def test_max_over_mean_empty_loads(self):
        assert max_over_mean([0, 0]) == 1.0


class TestAlternation:
    def test_perfect_alternation_positive(self):
        # Busy in one cycle, idle in the next (Fig 5-5).
        assert alternation_score([10, 0, 10, 0], [0, 10, 0, 10]) > 0.9

    def test_correlated_is_negative(self):
        assert alternation_score([10, 0], [10, 0]) < -0.9

    def test_constant_cycle_scores_zero(self):
        assert alternation_score([5, 5], [1, 9]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            alternation_score([1], [1, 2])


class TestAggregate:
    def test_sums_per_processor(self):
        assert aggregate([[1, 2], [3, 4]]) == [4, 6]

    def test_empty(self):
        assert aggregate([]) == []

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            aggregate([[1, 2], [3]])

    def test_alternating_cycles_aggregate_even(self):
        """The Fig 5-5 observation: per-cycle uneven, aggregate even."""
        c1, c2 = [20, 0, 18, 2], [1, 19, 3, 17]
        total = aggregate([c1, c2])
        assert coefficient_of_variation(total) < \
            coefficient_of_variation(c1)


class TestReportFormatting:
    def test_format_table_alignment(self):
        out = format_table(["p", "speedup"], [[1, 1.0], [32, 12.13]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "12.13" in lines[-1]

    def test_format_table_title(self):
        out = format_table(["a"], [[1]], title="Table X")
        assert out.startswith("Table X")

    def test_bar_chart_scales(self):
        out = bar_chart([1, 2, 4], labels=["a", "b", "c"], width=8)
        lines = out.splitlines()
        assert lines[2].count("#") == 8       # max value gets full width
        assert lines[0].count("#") == 2

    def test_bar_chart_label_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart([1], labels=["a", "b"])

    def test_bar_chart_all_zero(self):
        out = bar_chart([0, 0])
        assert "#" not in out

    def test_curve_plot_contains_markers_and_legend(self):
        out = curve_plot([1, 2, 4], [[1, 2, 4], [1, 1.5, 2]],
                         labels=["fast", "slow"])
        assert "o" in out and "x" in out
        assert "o=fast" in out and "x=slow" in out

"""Property-based round trip: random Production ASTs printed as OPS5
source must re-parse to the identical AST.

This fuzzes the lexer, parser and the __str__ printers together, and
has historically been the test that finds quoting and precedence bugs.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops5 import (AttrTest, BindAction, ComputeExpr,
                        ConditionElement, Constant, Disjunction,
                        HaltAction, MakeAction, ModifyAction, Predicate,
                        Production, RemoveAction, RHSValue, Variable,
                        WriteAction, parse_production)

CLASSES = ["alpha", "beta", "gamma"]
ATTRS = ["p", "q", "r"]
VAR_NAMES = ["x", "y", "z"]

symbols = st.sampled_from(["red", "blue", "two words", "nil", "a%b",
                           "with|bar", "42ish"])
numbers = st.one_of(st.integers(min_value=-999, max_value=999),
                    st.sampled_from([2.5, -0.125, 100.75]))
constants = st.one_of(symbols, numbers)

relational = st.sampled_from([Predicate.NE, Predicate.LT, Predicate.LE,
                              Predicate.GT, Predicate.GE])


@st.composite
def productions(draw):
    n_ces = draw(st.integers(min_value=1, max_value=4))
    bound = []
    ces = []
    for ce_index in range(n_ces):
        negated = ce_index > 0 and draw(st.booleans()) \
            and draw(st.booleans())
        n_tests = draw(st.integers(min_value=0, max_value=3))
        tests = []
        for _ in range(n_tests):
            attr = draw(st.sampled_from(ATTRS))
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice == 0:
                tests.append(AttrTest(attr, Predicate.EQ,
                                      Constant(draw(constants))))
            elif choice == 1:
                values = draw(st.lists(constants, min_size=1,
                                       max_size=3, unique_by=str))
                tests.append(AttrTest(attr, Predicate.EQ,
                                      Disjunction(tuple(values))))
            elif choice == 2 or not bound:
                var = draw(st.sampled_from(VAR_NAMES))
                tests.append(AttrTest(attr, Predicate.EQ,
                                      Variable(var)))
                if not negated and var not in bound:
                    bound.append(var)
            else:
                tests.append(AttrTest(attr, draw(relational),
                                      Variable(draw(
                                          st.sampled_from(bound)))))
        ces.append(ConditionElement(cls=draw(st.sampled_from(CLASSES)),
                                    tests=tuple(tests),
                                    negated=negated))

    positive_indices = [i + 1 for i, ce in enumerate(ces)
                        if not ce.negated]
    actions = []
    n_actions = draw(st.integers(min_value=0, max_value=3))
    local_bound = list(bound)
    for _ in range(n_actions):
        kind = draw(st.integers(min_value=0, max_value=5))
        if kind == 0:
            n_assign = draw(st.integers(min_value=0, max_value=2))
            assigns = []
            for _ in range(n_assign):
                attr = draw(st.sampled_from(ATTRS))
                if local_bound and draw(st.booleans()):
                    value = RHSValue(Variable(draw(
                        st.sampled_from(local_bound))))
                else:
                    value = RHSValue(Constant(draw(constants)))
                assigns.append((attr, value))
            actions.append(MakeAction(
                cls=draw(st.sampled_from(CLASSES)),
                assignments=tuple(assigns)))
        elif kind == 1 and positive_indices:
            actions.append(RemoveAction(ce_indices=(
                draw(st.sampled_from(positive_indices)),)))
        elif kind == 2 and positive_indices:
            actions.append(ModifyAction(
                ce_index=draw(st.sampled_from(positive_indices)),
                assignments=(("p", RHSValue(Constant(1))),)))
        elif kind == 3:
            actions.append(WriteAction(values=(
                RHSValue(Constant(draw(symbols))),)))
        elif kind == 4 and local_bound:
            expr = ComputeExpr((Variable(draw(
                st.sampled_from(local_bound))),
                draw(st.sampled_from(["+", "-", "*"])),
                Constant(draw(st.integers(min_value=1, max_value=9)))))
            var = draw(st.sampled_from(VAR_NAMES))
            actions.append(BindAction(variable=var,
                                      value=RHSValue(expr)))
            if var not in local_bound:
                local_bound.append(var)
        else:
            actions.append(HaltAction())

    return Production(name="fuzzed", lhs=tuple(ces),
                      rhs=tuple(actions))


@given(production=productions())
def test_print_parse_roundtrip(production):
    source = str(production)
    reparsed = parse_production(source)
    assert reparsed == production, source


@given(production=productions())
def test_double_roundtrip_is_stable(production):
    once = parse_production(str(production))
    twice = parse_production(str(once))
    assert once == twice

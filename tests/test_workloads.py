"""Tests for the synthetic characteristic sections and demo programs.

The Table 5-2 counts are hard requirements: the sections ARE the
experiment inputs, so these tests pin the published statistics exactly.
"""

import pytest

from repro.analysis import alternation_score, coefficient_of_variation
from repro.mpc import simulate, simulate_base, speedup
from repro.trace import validate_trace
from repro.workloads import (all_sections, rubik_section, tourney_section,
                             weaver_section)
from repro.workloads.synthetic import (TraceBuilder, partition_counts,
                                       zipf_weights)
from repro.workloads.tourney import CP_NODE
from repro.workloads.weaver import HOT_NODE


class TestSyntheticHelpers:
    def test_zipf_normalised(self):
        w = zipf_weights(10, 1.0)
        assert sum(w) == pytest.approx(1.0)
        assert w[0] > w[-1]

    def test_zipf_zero_skew_uniform(self):
        w = zipf_weights(4, 0.0)
        assert all(x == pytest.approx(0.25) for x in w)

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_partition_exact_total(self):
        counts = partition_counts(100, zipf_weights(7, 1.3))
        assert sum(counts) == 100

    def test_partition_proportionality(self):
        counts = partition_counts(100, [0.7, 0.2, 0.1])
        assert counts == [70, 20, 10]

    def test_partition_zero_total(self):
        assert partition_counts(0, [0.5, 0.5]) == [0, 0]

    def test_builder_requires_cycle(self):
        b = TraceBuilder("x")
        with pytest.raises(RuntimeError):
            b.root(1, side="left")

    def test_builder_rejects_terminal_successor(self):
        b = TraceBuilder("x")
        b.new_cycle()
        r = b.root(1, side="right")
        t = b.terminal(r, node=9)
        with pytest.raises(ValueError):
            b.child(t, node=2)


class TestTable52:
    """Table 5-2, exactly."""

    def test_rubik_counts(self):
        stats = rubik_section().stats()
        assert (stats.left, stats.right, stats.total) == (2388, 6114, 8502)

    def test_tourney_counts(self):
        stats = tourney_section().stats()
        assert (stats.left, stats.right, stats.total) == (10667, 83, 10750)

    def test_weaver_counts(self):
        stats = weaver_section().stats()
        assert (stats.left, stats.right, stats.total) == (338, 78, 416)

    def test_left_fractions_match_paper(self):
        assert round(100 * rubik_section().stats().left_fraction) == 28
        assert round(100 * tourney_section().stats().left_fraction) == 99
        assert round(100 * weaver_section().stats().left_fraction) == 81


class TestSectionStructure:
    def test_all_sections_validate(self):
        for trace in all_sections():
            assert validate_trace(trace) == []

    def test_deterministic_given_seed(self):
        from repro.trace import dumps_trace
        assert dumps_trace(rubik_section(3)) == dumps_trace(rubik_section(3))

    def test_seeds_change_layout_not_stats(self):
        a, b = rubik_section(0), rubik_section(99)
        assert a.stats().total == b.stats().total
        from repro.trace import dumps_trace
        assert dumps_trace(a) != dumps_trace(b)

    def test_rubik_has_four_cycles(self):
        assert len(rubik_section().cycles) == 4

    def test_tourney_has_five_cycles_cp_in_middle(self):
        trace = tourney_section()
        assert len(trace.cycles) == 5
        sizes = [len(c) for c in trace.cycles]
        assert sizes[2] == max(sizes)  # the cross-product cycle

    def test_tourney_cp_bucket_is_shared(self):
        """The cross-product node tests no variable: one bucket."""
        trace = tourney_section()
        cp_keys = {a.key for c in trace for a in c
                   if a.node_id == CP_NODE}
        assert len(cp_keys) == 1
        assert next(iter(cp_keys)).values == ()

    def test_tourney_multiple_modify_structure(self):
        """The cp stream: a populated prefix (tokens from earlier
        cycles' adds), then the modify wave — alternating deletes and
        re-adds, "half of which are adds and half are deletes"."""
        trace = tourney_section()
        tags = [a.tag for c in trace for a in c
                if a.node_id == CP_NODE and a.is_root]
        half = len(tags) // 2
        prefix, wave = tags[:half], tags[half:]
        assert all(t == "+" for t in prefix)
        assert abs(wave.count("+") - wave.count("-")) <= 1
        # Deletes therefore always land on a non-empty bucket.
        depth = 0
        for t in tags:
            depth += 1 if t == "+" else -1
            assert depth > 0

    def test_weaver_heavy_cycle_shape(self):
        """Three left activations generate 120 of ~150 (Section 5.2.1)."""
        trace = weaver_section()
        heavy = trace.cycles[1]
        hot = [a for a in heavy if a.node_id == HOT_NODE]
        assert len(hot) == 3
        assert sum(a.n_successors for a in hot) == 120
        two_input = len(heavy.two_input_activations())
        assert 140 <= two_input <= 160

    def test_weaver_hot_node_has_multiple_branches(self):
        """Successors spread across >1 destination node, so unsharing
        (Fig 5-3) has branches to split."""
        trace = weaver_section()
        heavy = trace.cycles[1]
        dests = set()
        for a in heavy:
            if a.node_id == HOT_NODE:
                for s in a.successors:
                    dests.add(heavy.activations[s].node_id)
        assert len(dests) >= 2

    def test_rubik_alternating_active_buckets(self):
        """Consecutive cycles use (nearly) disjoint left-bucket sets;
        the only overlap is the pinned mid-weight bucket that keeps one
        processor busy in both cycles (Fig 5-5)."""
        trace = rubik_section()
        def left_keys(c):
            return {a.key for a in trace.cycles[c]
                    if a.side == "left" and a.kind != "terminal"}
        overlap = left_keys(0) & left_keys(1)
        assert len(overlap) <= 2
        assert len(overlap) < len(left_keys(0)) / 4
        # Same-parity cycles reuse the same bucket set entirely.
        assert left_keys(0) == left_keys(2)


class TestSectionBehaviour:
    """Coarse speedup-shape guards; precise claims live in benchmarks/."""

    def test_rubik_speeds_up_well(self):
        trace = rubik_section()
        base = simulate_base(trace)
        assert speedup(base, simulate(trace, n_procs=32)) > 8.0

    def test_weaver_is_the_worst_section(self):
        results = {}
        for trace in all_sections():
            base = simulate_base(trace)
            results[trace.name] = speedup(base,
                                          simulate(trace, n_procs=32))
        assert results["weaver"] < results["rubik"]
        assert results["weaver"] < results["tourney"]

    def test_fig_5_5_alternation(self):
        """Busy processors in one Rubik cycle are idle in the next."""
        trace = rubik_section()
        run = simulate(trace, n_procs=16)
        c1 = run.cycles[0].proc_left_activations
        c2 = run.cycles[1].proc_left_activations
        assert alternation_score(c1, c2) > 0.0

    def test_fig_5_5_per_cycle_uneven(self):
        trace = rubik_section()
        run = simulate(trace, n_procs=16)
        assert coefficient_of_variation(
            run.cycles[0].proc_left_activations) > 0.3


class TestDemoPrograms:
    def test_blocks_world_runs_and_traces(self):
        from repro.workloads.programs import blocks_world_trace
        trace = blocks_world_trace()
        assert validate_trace(trace) == []
        assert trace.total_activations() > 0

    def test_monkey_halts(self):
        from repro.ops5 import run_program
        from repro.rete import ReteNetwork
        from repro.workloads.programs import monkey_program
        result = run_program(monkey_program(), matcher=ReteNetwork())
        assert result.halted
        assert "got bananas" in result.output

    def test_router_routes_all_nets(self):
        from repro.ops5 import run_program
        from repro.rete import ReteNetwork
        from repro.workloads.programs import router_program
        result = run_program(router_program(), matcher=ReteNetwork())
        assert result.halted
        assert "routing complete" in result.output

    def test_demo_traces_simulate(self):
        from repro.workloads.programs import monkey_trace
        trace = monkey_trace()
        base = simulate_base(trace)
        run = simulate(trace, n_procs=4)
        assert speedup(base, run) >= 0.9

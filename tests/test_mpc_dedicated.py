"""Tests for the dedicated constant-test processor variant (§3.2 v2)."""

import pytest

from repro.mpc import (TABLE_5_1, ZERO_OVERHEADS, RoundRobinMapping,
                       simulate, simulate_base, simulate_dedicated_alpha,
                       speedup)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def act(i, node, side="right", parent=None, succ=(), kind="join",
        vals=()):
    return TraceActivation(act_id=i, parent_id=parent, node_id=node,
                           kind=kind, side=side, tag="+",
                           key=BucketKey(node, tuple(vals)),
                           successors=tuple(succ))


def root_heavy_trace(n=60):
    cycle = CycleTrace(index=1)
    for i in range(n):
        cycle.add(act(i + 1, node=i + 1))
    return SectionTrace(name="roots", cycles=[cycle])


class TestBasics:
    def test_reports_combined_processor_count(self):
        run = simulate_dedicated_alpha(root_heavy_trace(), 8,
                                       n_const_procs=2)
        assert run.n_procs == 10

    def test_match_procs_do_no_constant_tests(self):
        """Match processors start at 0 busy; the dedicated ones carry
        the constant-test work."""
        run = simulate_dedicated_alpha(root_heavy_trace(), 4,
                                       n_const_procs=2)
        c = run.cycles[0]
        # Dedicated procs (last two) carry 30/2 = 15us of tests each.
        assert c.proc_busy_us[4] >= 15.0
        assert c.proc_busy_us[5] >= 15.0

    def test_constant_tests_split_among_dedicated_procs(self):
        one = simulate_dedicated_alpha(_empty_trace(), 4,
                                       n_const_procs=1)
        three = simulate_dedicated_alpha(_empty_trace(), 4,
                                         n_const_procs=3)
        # Empty cycle: makespan = broadcast + 30/k.
        assert one.total_us > three.total_us

    def test_every_root_is_a_message(self):
        run = simulate_dedicated_alpha(root_heavy_trace(60), 8,
                                       n_const_procs=2)
        # broadcast + 60 root messages (terminals would add more).
        assert run.n_messages == 61

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            simulate_dedicated_alpha(root_heavy_trace(), 0)
        with pytest.raises(ValueError):
            simulate_dedicated_alpha(root_heavy_trace(), 4,
                                     n_const_procs=0)

    def test_rejects_mapping_mismatch(self):
        with pytest.raises(ValueError):
            simulate_dedicated_alpha(root_heavy_trace(), 4,
                                     mapping=RoundRobinMapping(8))


def _empty_trace():
    return SectionTrace(name="empty", cycles=[CycleTrace(index=1)])


class TestPaperTradeoff:
    def test_marginal_win_at_zero_overheads(self):
        """Without communication costs, skipping the duplicated
        constant tests is a (small) win."""
        trace = root_heavy_trace(100)
        base = simulate_base(trace)
        broadcast = speedup(base, simulate(trace, 8))
        dedicated = speedup(base, simulate_dedicated_alpha(
            trace, 8, n_const_procs=2))
        assert dedicated >= broadcast * 0.95

    def test_bottleneck_at_high_overheads(self):
        """The paper's warning: with comparatively high overheads the
        dedicated processors bottleneck on per-root sends, and
        broadcasting is preferable."""
        from repro.workloads import rubik_section
        trace = rubik_section()
        base = simulate_base(trace)
        overheads = TABLE_5_1[3]
        broadcast = speedup(base, simulate(trace, 16,
                                           overheads=overheads))
        dedicated = speedup(base, simulate_dedicated_alpha(
            trace, 16, n_const_procs=2, overheads=overheads))
        assert broadcast > 1.3 * dedicated

    def test_more_dedicated_procs_relieve_the_bottleneck(self):
        from repro.workloads import rubik_section
        trace = rubik_section()
        base = simulate_base(trace)
        overheads = TABLE_5_1[3]
        two = speedup(base, simulate_dedicated_alpha(
            trace, 16, n_const_procs=2, overheads=overheads))
        six = speedup(base, simulate_dedicated_alpha(
            trace, 16, n_const_procs=6, overheads=overheads))
        assert six > two

"""Unit tests for the OPS5 lexer."""

import pytest

from repro.ops5.errors import LexError
from repro.ops5.lexer import Token, TokenType, tokenize


def types(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_parens(self):
        assert types("()") == [TokenType.LPAREN, TokenType.RPAREN]

    def test_braces(self):
        assert types("{}") == [TokenType.LBRACE, TokenType.RBRACE]

    def test_arrow(self):
        assert types("-->") == [TokenType.ARROW]

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_attribute(self):
        toks = tokenize("^color")
        assert toks[0].type is TokenType.ATTRIBUTE
        assert toks[0].value == "color"

    def test_variable(self):
        toks = tokenize("<x>")
        assert toks[0].type is TokenType.VARIABLE
        assert toks[0].value == "x"

    def test_symbol_atom(self):
        assert values("blue") == ["blue"]

    def test_integer_atom(self):
        assert values("42") == [42]

    def test_negative_integer_atom(self):
        assert values("-42") == [-42]

    def test_float_atom(self):
        assert values("2.5") == [2.5]


class TestNegationVsMinus:
    def test_negation_before_paren(self):
        assert types("-(hand)") == [TokenType.NEGATION, TokenType.LPAREN,
                                    TokenType.ATOM, TokenType.RPAREN]

    def test_minus_number_not_negation(self):
        toks = tokenize("-5")
        assert toks[0].type is TokenType.ATOM
        assert toks[0].value == -5

    def test_arrow_not_split(self):
        # "-->" must not tokenize as NEGATION + something.
        assert types("--> x") == [TokenType.ARROW, TokenType.ATOM]


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">=", "<=>"])
    def test_operator_atoms(self, op):
        toks = tokenize(op)
        assert toks[0].type is TokenType.ATOM
        assert toks[0].value == op

    def test_less_than_followed_by_number(self):
        assert values("< 5") == ["<", 5]

    def test_le_vs_variable(self):
        # "<= 5" is the operator; "<x> 5" is a variable then a number.
        assert values("<= 5") == ["<=", 5]
        toks = tokenize("<x> 5")
        assert toks[0].type is TokenType.VARIABLE


class TestQuotingAndComments:
    def test_bar_quoted_symbol(self):
        toks = tokenize("|two words|")
        assert toks[0].type is TokenType.ATOM
        assert toks[0].value == "two words"

    def test_bar_quoted_preserves_specials(self):
        assert tokenize("|a(b)c|")[0].value == "a(b)c"

    def test_unterminated_bar_raises(self):
        with pytest.raises(LexError):
            tokenize("|oops")

    def test_doubled_bar_is_literal_bar(self):
        assert tokenize("|a||b|")[0].value == "a|b"

    def test_bar_only_symbol(self):
        assert tokenize("||||")[0].value == "|"

    def test_unterminated_after_doubled_bar_raises(self):
        with pytest.raises(LexError):
            tokenize("|a||")

    def test_comment_to_end_of_line(self):
        assert values("a ; comment (ignored)\nb") == ["a", "b"]

    def test_empty_attribute_raises(self):
        with pytest.raises(LexError):
            tokenize("^ foo")


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_variable_across_newline_is_operator(self):
        # "<" at end of line with no ">" before the newline is the
        # less-than operator, not a malformed variable.
        toks = tokenize("< \n x>")
        assert toks[0].type is TokenType.ATOM
        assert toks[0].value == "<"


class TestRealisticProduction:
    def test_full_production_token_stream(self):
        source = """
        (p clear-the-blue-block
          (block ^name <b2> ^color blue)
          -(hand ^state busy)
          -->
          (remove 2))
        """
        toks = tokenize(source)
        ttypes = [t.type for t in toks]
        assert TokenType.NEGATION in ttypes
        assert TokenType.ARROW in ttypes
        assert ttypes[-1] is TokenType.EOF
        variables = [t.value for t in toks if t.type is TokenType.VARIABLE]
        assert variables == ["b2"]

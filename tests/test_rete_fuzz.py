"""Differential fuzzing of the flattened match kernel.

Three independently-written matchers — the from-scratch naive matcher,
the preserved object-dispatch Rete (:class:`ReferenceReteNetwork`) and
the flattened kernel (with and without the vectorized alpha path) —
are driven through random rule subsets and random working-memory churn
(adds, removes, negated CEs, multiple-modify bursts).  All four must
agree on the conflict set after every single delta; the kernel variants
must also agree on memory totals and live token counts.

The ``ci`` hypothesis profile runs on every PR; the ``fuzz``-marked
deep sweeps run nightly at the ``nightly`` profile budget.
"""

from typing import List

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops5 import NaiveMatcher, parse_production
from repro.ops5.wme import WME
from repro.rete import ReferenceReteNetwork, ReteNetwork

CLASSES = ["a", "b", "c"]
VALUES = [1, 2, 3, "x", "y"]

wme_payloads = st.builds(
    dict,
    p=st.sampled_from(VALUES),
    q=st.sampled_from(VALUES),
)

#: Structurally diverse rules: joins, chains, negation in every
#: position, relational and intra-CE tests, disjunctions, self-joins.
PRODUCTION_SOURCES = [
    "(p join2 (a ^p <x>) (b ^p <x>) --> (remove 1))",
    "(p chain3 (a ^p <x>) (b ^p <x> ^q <y>) (c ^q <y>) --> (remove 1))",
    "(p cross (a) (b) --> (remove 1))",
    "(p neg (a) -(c) --> (remove 1))",
    "(p negjoin (a ^p <x>) -(b ^p <x>) --> (remove 1))",
    "(p negmid (a ^p <x>) -(c ^p <x>) (b) --> (remove 1))",
    "(p negrel (a ^p <x>) -(b ^q > <x>) --> (remove 1))",
    "(p rel (a ^p <x>) (b ^p > <x>) --> (remove 1))",
    "(p intra (a ^p <x> ^q <x>) --> (remove 1))",
    "(p selfjoin (a ^p <x>) (a ^q <x>) --> (remove 1))",
    "(p disj (a ^p << 1 x >>) --> (remove 1))",
    "(p doubleneg (a ^p <x>) -(b ^p <x>) -(c ^q <x>) --> (remove 1))",
]

#: A battery of EQ-constant patterns on one class, wide enough to
#: engage the kernel's vectorized alpha path (>= NUMPY_MIN_PATTERNS).
CONST_BATTERY = [
    f"(p const{v} (a ^p {v} ^q <y>) (b ^q <y>) --> (remove 1))"
    for v in range(10)
]


def conflict_signature(matcher):
    return sorted((inst.production.name,
                   tuple(w.wme_id for w in inst.wmes))
                  for inst in matcher.conflict_set())


@st.composite
def churn_scripts(draw, max_ops=30):
    """Adds, removes, and multiple-modify bursts over a shared pool.

    A burst removes several live wmes and adds fresh-id replacements in
    one step — the working-memory shape of an OPS5 RHS with several
    ``modify`` actions (the paper's multiple-modify effect).
    """
    n_ops = draw(st.integers(min_value=1, max_value=max_ops))
    ops = []
    live: List[int] = []
    next_id = 1
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["add", "add", "remove", "burst"]))
        if kind == "add" or not live:
            cls = draw(st.sampled_from(CLASSES))
            payload = draw(wme_payloads)
            ops.append(("add", next_id, cls, payload))
            live.append(next_id)
            next_id += 1
        elif kind == "remove":
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("remove", victim))
        else:
            size = draw(st.integers(min_value=1,
                                    max_value=min(4, len(live))))
            victims = draw(st.lists(st.sampled_from(live),
                                    min_size=size, max_size=size,
                                    unique=True))
            burst = []
            for victim in victims:
                live.remove(victim)
                payload = draw(wme_payloads)
                cls = draw(st.sampled_from(CLASSES))
                burst.append((victim, next_id, cls, payload))
                live.append(next_id)
                next_id += 1
            ops.append(("burst", burst))
    return ops


@st.composite
def rule_subsets(draw, battery=False):
    indices = draw(st.lists(
        st.integers(min_value=0, max_value=len(PRODUCTION_SOURCES) - 1),
        min_size=1, max_size=5, unique=True))
    rules = [PRODUCTION_SOURCES[i] for i in indices]
    if battery or draw(st.booleans()):
        rules = rules + CONST_BATTERY
    return rules


def _apply(op, engines, wmes, timestamp):
    """Apply one script op to every engine; return the new timestamp."""
    if op[0] == "add":
        _, wid, cls, payload = op
        timestamp += 1
        wme = WME(wid, cls, dict(payload), timestamp=timestamp)
        wmes[wid] = wme
        for engine in engines:
            engine.add_wme(wme)
    elif op[0] == "remove":
        wme = wmes.pop(op[1])
        for engine in engines:
            engine.remove_wme(wme)
    else:
        for old_id, new_id, cls, payload in op[1]:
            old = wmes.pop(old_id)
            for engine in engines:
                engine.remove_wme(old)
            timestamp += 1
            wme = WME(new_id, cls, dict(payload), timestamp=timestamp)
            wmes[new_id] = wme
            for engine in engines:
                engine.add_wme(wme)
    return timestamp


def _run_differential(rules, script):
    naive = NaiveMatcher()
    reference = ReferenceReteNetwork()
    fast = ReteNetwork()
    plain = ReteNetwork(use_numpy=False)
    engines = (naive, reference, fast, plain)
    for source in rules:
        production = parse_production(source)
        for engine in engines:
            engine.add_production(production)
    wmes = {}
    timestamp = 0
    for op in script:
        timestamp = _apply(op, engines, wmes, timestamp)
        want = conflict_signature(naive)
        assert conflict_signature(reference) == want
        assert conflict_signature(fast) == want
        assert conflict_signature(plain) == want
    assert fast.memories.counts() == plain.memories.counts()
    assert (fast.kernel.pool.live_count()
            == plain.kernel.pool.live_count())


@given(rules=rule_subsets(), script=churn_scripts())
def test_fast_matches_reference_and_naive_under_churn(rules, script):
    _run_differential(rules, script)


@given(rules=rule_subsets(battery=True), script=churn_scripts())
def test_const_battery_vectorized_parity(rules, script):
    """The wide EQ-constant battery always rides along, so the numpy
    alpha path (when numpy is importable) is fuzzed too."""
    _run_differential(rules, script)


@given(rules=rule_subsets(), script=churn_scripts())
def test_traced_equals_untraced_final_state(rules, script):
    """An observer must not change what the kernel computes — only
    whether events are emitted.  The traced stack machine and the
    untraced fast walk must land in identical final states."""
    traced = ReteNetwork()
    untraced = ReteNetwork()
    events = []
    traced.observers.append(events.append)
    engines = (traced, untraced)
    for source in rules:
        production = parse_production(source)
        for engine in engines:
            engine.add_production(production)
    wmes = {}
    timestamp = 0
    for op in script:
        timestamp = _apply(op, engines, wmes, timestamp)
        assert conflict_signature(traced) == conflict_signature(untraced)
    assert traced.memories.counts() == untraced.memories.counts()
    assert (traced.kernel.pool.live_count()
            == untraced.kernel.pool.live_count())


@pytest.mark.fuzz
@given(rules=rule_subsets(), script=churn_scripts(max_ops=120))
def test_deep_churn_differential(rules, script):
    """Nightly: long scripts reach deeper negative-count transitions
    and heavier token-pool recycling than the PR-gate tier."""
    _run_differential(rules, script)


@pytest.mark.fuzz
@given(rules=rule_subsets(battery=True), script=churn_scripts(max_ops=120))
def test_deep_vectorized_differential(rules, script):
    _run_differential(rules, script)

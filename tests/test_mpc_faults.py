"""Tests of the fault-injection and reliable-delivery subsystem.

The two load-bearing contracts, both pinned here:

* **Determinism** — the fault model is counter-based, so the same seed
  always yields a bit-identical :class:`~repro.mpc.metrics.SimResult`,
  on canonical sections and on arbitrary hypothesis-generated traces.
* **Zero-fault transparency** — a null :class:`FaultModel` takes the
  exact fault-free code path: results equal the fault-free simulator
  (and the preserved reference implementation) on every section trace
  and Table 5-1 overhead setting, field for field.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (DEFAULT_PROTOCOL, TABLE_5_1, FailStop, FaultModel,
                       GridPoint, ProtocolModel, RunConfig, StallWindow,
                       fault_sweep, plan_delivery, run_grid, simulate,
                       simulate_base, simulate_config, speedup)
from repro.mpc._reference import simulate_reference
from repro.mpc.faults import counter_u01
from repro.workloads import rubik_section, tourney_section, weaver_section

from tests.test_simulator_properties import random_traces

OVERHEADS = TABLE_5_1[1]


@pytest.fixture(scope="module")
def sections():
    return [rubik_section(), tourney_section(), weaver_section()]


def assert_results_identical(a, b):
    """Field-for-field equality of every cycle, counters included."""
    assert a.trace_name == b.trace_name
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        assert dataclasses.asdict(ca) == dataclasses.asdict(cb)


class TestModelValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultModel(loss_prob=1.5)
        with pytest.raises(ValueError):
            FaultModel(dup_prob=-0.1)
        with pytest.raises(ValueError):
            FaultModel(jitter_us=-1.0)

    def test_protocol_validated(self):
        with pytest.raises(ValueError):
            ProtocolModel(timeout_us=0.0)
        with pytest.raises(ValueError):
            ProtocolModel(backoff=0.5)
        with pytest.raises(ValueError):
            ProtocolModel(max_retries=-1)

    def test_null_detection(self):
        assert FaultModel().is_null
        assert not FaultModel(loss_prob=0.1).is_null
        assert not FaultModel(stalls=(StallWindow(0, 0.0, 1.0),)).is_null
        assert not FaultModel(failures=(FailStop(0, 1),)).is_null

    def test_counter_u01_is_a_pure_function(self):
        a = counter_u01(7, 1, 2, 3)
        assert a == counter_u01(7, 1, 2, 3)
        assert 0.0 <= a < 1.0
        assert counter_u01(7, 1, 2, 3) != counter_u01(8, 1, 2, 3)
        assert counter_u01(7, 1, 2, 3) != counter_u01(7, 1, 2, 4)


class TestDeliveryPlan:
    def test_certain_loss_exhausts_retries_then_fallback(self):
        faults = FaultModel(loss_prob=1.0)
        proto = ProtocolModel(timeout_us=100.0, backoff=2.0, max_retries=3)
        plan = plan_delivery(faults, proto, cycle=1, msg_id=42)
        assert plan.attempts == 4  # 3 lost + 1 reliable fallback
        assert plan.retransmits == 3
        assert plan.timeout_wait_us == 100.0 + 200.0 + 400.0

    def test_zero_loss_single_attempt(self):
        plan = plan_delivery(FaultModel(), DEFAULT_PROTOCOL, 1, 42)
        assert plan.attempts == 1
        assert plan.timeout_wait_us == 0.0
        assert plan.duplicates == 0
        assert plan.jitter_us == 0.0

    def test_plans_depend_only_on_identity(self):
        faults = FaultModel(seed=3, loss_prob=0.5, dup_prob=0.5,
                            jitter_us=10.0)
        a = plan_delivery(faults, DEFAULT_PROTOCOL, 2, 7)
        b = plan_delivery(faults, DEFAULT_PROTOCOL, 2, 7)
        assert a == b


class TestZeroFaultTransparency:
    """The issue's acceptance pin: zero-fault == today's simulator on
    all section traces and Table 5-1 overhead settings."""

    @pytest.mark.parametrize("overheads", TABLE_5_1,
                             ids=lambda m: m.label())
    def test_sections_bit_identical(self, sections, overheads):
        for trace in sections:
            plain = simulate(trace, n_procs=16, overheads=overheads)
            with_null = simulate_config(trace, RunConfig(
                n_procs=16, overheads=overheads, faults=FaultModel()))
            with_none = simulate_config(trace, RunConfig(
                n_procs=16, overheads=overheads, faults=None))
            assert_results_identical(plain, with_null)
            assert_results_identical(plain, with_none)
            assert_results_identical(
                plain, simulate_reference(trace, 16, overheads=overheads))

    def test_fault_free_counters_are_zero(self, sections):
        run = simulate(sections[0], n_procs=8, overheads=OVERHEADS)
        assert run.retransmits == 0
        assert run.duplicate_drops == 0
        assert run.acks == 0
        assert run.timeout_wait_us == 0.0
        assert run.stall_us == 0.0
        assert run.recovery_us == 0.0


class TestSectionDeterminism:
    def test_same_seed_bit_identical(self, sections):
        faults = FaultModel(seed=11, loss_prob=0.01, dup_prob=0.005,
                            jitter_us=3.0)
        for trace in sections:
            a = simulate_config(trace, RunConfig(
                n_procs=16, overheads=OVERHEADS, faults=faults))
            b = simulate_config(trace, RunConfig(
                n_procs=16, overheads=OVERHEADS,
                faults=FaultModel(seed=11, loss_prob=0.01,
                                  dup_prob=0.005, jitter_us=3.0)))
            assert_results_identical(a, b)

    def test_different_seed_differs(self, sections):
        trace = sections[1]  # tourney: enough messages to hit faults
        a = simulate_config(trace, RunConfig(
            n_procs=16, overheads=OVERHEADS,
            faults=FaultModel(seed=0, loss_prob=0.05)))
        b = simulate_config(trace, RunConfig(
            n_procs=16, overheads=OVERHEADS,
            faults=FaultModel(seed=1, loss_prob=0.05)))
        assert a.retransmits != b.retransmits or a.total_us != b.total_us

    def test_parallel_equals_serial_with_faults(self, sections):
        trace = sections[0]
        faults = FaultModel(seed=5, loss_prob=0.01, jitter_us=2.0)
        points = [GridPoint(n_procs=n, overheads=OVERHEADS, faults=faults)
                  for n in (4, 16)]
        serial = run_grid(trace, points, workers=1)
        fanned = run_grid(trace, points, workers=2)
        for a, b in zip(serial, fanned):
            assert_results_identical(a, b)


class TestProtocolAccounting:
    def test_certain_loss_retransmit_budget(self, sections):
        """At loss 1 every data message burns its whole retry budget."""
        trace = sections[0]
        proto = ProtocolModel(timeout_us=50.0, max_retries=2)
        run = simulate_config(trace, RunConfig(
            n_procs=16, overheads=OVERHEADS,
            faults=FaultModel(loss_prob=1.0), protocol=proto))
        n_data_messages = run.acks  # one ack per delivered message here
        assert run.retransmits == proto.max_retries * n_data_messages
        assert run.timeout_wait_us == pytest.approx(
            (50.0 + 100.0) * n_data_messages)

    def test_reliability_is_not_free(self, sections):
        """An active protocol layer costs time even when no fault fires:
        acks are priced per message (the paper's perfect network is an
        upper bound)."""
        for trace in sections:
            plain = simulate(trace, n_procs=16, overheads=OVERHEADS)
            # dup_prob tiny but nonzero -> protocol active; seed chosen
            # freely, losses may or may not fire.
            guarded = simulate_config(trace, RunConfig(
                n_procs=16, overheads=OVERHEADS,
                faults=FaultModel(seed=0, dup_prob=1e-9)))
            assert guarded.total_us > plain.total_us
            assert guarded.acks > 0

    def test_duplicates_all_dropped(self, sections):
        trace = sections[0]
        run = simulate_config(trace, RunConfig(
            n_procs=16, overheads=OVERHEADS,
            faults=FaultModel(dup_prob=1.0)))
        assert run.duplicate_drops == run.acks // 2
        assert run.duplicate_drops > 0

    def test_degradation_monotone_on_rubik(self, sections):
        curve = fault_sweep(sections[0], n_procs=16,
                            overheads=OVERHEADS, workers=1)
        assert curve.is_monotone()
        assert curve.speedups[-1] < curve.speedups[0]


class TestStallsAndFailStop:
    def test_stall_never_speeds_up(self, sections):
        trace = sections[0]
        plain = simulate(trace, n_procs=8)
        stalled = simulate_config(trace, RunConfig(
            n_procs=8,
            faults=FaultModel(stalls=(StallWindow(0, 0.0, 5000.0),))))
        assert stalled.total_us >= plain.total_us
        assert stalled.stall_us > 0

    def test_fail_stop_accrues_recovery_and_delays(self, sections):
        trace = sections[0]
        plain = simulate(trace, n_procs=8)
        crashed = simulate_config(trace, RunConfig(
            n_procs=8,
            faults=FaultModel(failures=(
                FailStop(proc=2, cycle=trace.cycles[0].index,
                         recovery_us=50_000.0),))))
        assert crashed.recovery_us == 50_000.0
        assert crashed.total_us > plain.total_us

    def test_stall_on_out_of_range_proc_is_ignored(self, sections):
        trace = sections[0]
        plain = simulate(trace, n_procs=4)
        ghost = simulate_config(trace, RunConfig(
            n_procs=4,
            faults=FaultModel(stalls=(StallWindow(99, 0.0, 1e6),))))
        assert ghost.total_us == plain.total_us


# --- property tests over hypothesis-generated traces -----------------------


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=10),
       loss=st.floats(min_value=0.0, max_value=0.5),
       dup=st.floats(min_value=0.0, max_value=0.3),
       jitter=st.floats(min_value=0.0, max_value=20.0))
def test_same_seed_bit_identical_on_random_traces(trace, n_procs, seed,
                                                  loss, dup, jitter):
    faults = FaultModel(seed=seed, loss_prob=loss, dup_prob=dup,
                        jitter_us=jitter)
    a = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OVERHEADS, faults=faults))
    b = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OVERHEADS,
        faults=FaultModel(seed=seed, loss_prob=loss,
                          dup_prob=dup, jitter_us=jitter)))
    assert_results_identical(a, b)


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16))
def test_zero_fault_equals_fault_free_on_random_traces(trace, n_procs):
    plain = simulate(trace, n_procs=n_procs, overheads=OVERHEADS)
    nulled = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OVERHEADS, faults=FaultModel()))
    assert_results_identical(plain, nulled)


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=5))
def test_faults_never_beat_the_perfect_network(trace, n_procs, seed):
    """Total busy time under faults is at least the fault-free total:
    the protocol layer only ever adds work."""
    plain = simulate(trace, n_procs=n_procs, overheads=OVERHEADS)
    faulty = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OVERHEADS,
        faults=FaultModel(seed=seed, loss_prob=0.2,
                          dup_prob=0.1, jitter_us=5.0)))
    busy_plain = sum(sum(c.proc_busy_us) for c in plain.cycles)
    busy_faulty = sum(sum(c.proc_busy_us) for c in faulty.cycles)
    assert busy_faulty >= busy_plain - 1e-9
    assert faulty.n_messages >= plain.n_messages


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=5))
def test_speedup_still_physical_under_faults(trace, n_procs, seed):
    base = simulate_base(trace)
    run = simulate_config(trace, RunConfig(
        n_procs=n_procs,
        faults=FaultModel(seed=seed, loss_prob=0.1, jitter_us=2.0)))
    s = speedup(base, run)
    assert 0 < s <= n_procs + 1e-9

"""Tests of the executor backends behind the one ``run()`` API.

The contracts under test:

* ``sim`` is bit-identical to calling :func:`simulate_config` directly;
* ``actors`` — a live asyncio/multiprocessing run of the Section 3.2
  message protocol — reproduces the simulator's counters and fire
  sequence exactly (timing fields excluded: they are wall time there);
* handles cache results and errors; unsupported configs are rejected
  with actionable messages rather than silently ignored.
"""

import pytest

from repro.exec import (ActorExecutor, BACKENDS, Executor, RunHandle,
                        SimExecutor, expected_fires, get_executor,
                        match_signature, run)
from repro.mpc import (TABLE_5_1, FaultModel, RunConfig,
                       TimelineRecorder, simulate_config)
from repro.workloads import rubik_section, weaver_section

OV8 = next(o for o in TABLE_5_1 if o.total_us == 8)


@pytest.fixture(scope="module")
def rubik():
    return rubik_section()


@pytest.fixture(scope="module")
def weaver():
    return weaver_section()


class TestRegistry:
    def test_all_backends_registered(self):
        assert sorted(BACKENDS) == ["actors", "served", "sim"]
        for name, cls in BACKENDS.items():
            assert cls.name == name

    def test_executors_satisfy_protocol(self):
        assert isinstance(SimExecutor(), Executor)
        assert isinstance(ActorExecutor(), Executor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            get_executor("gpu")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ActorExecutor(transport="carrier-pigeon")


class TestSimBackend:
    def test_bit_identical_to_simulate_config(self, rubik):
        config = RunConfig(n_procs=8, overheads=OV8)
        outcome = run(rubik, config)
        assert outcome.backend == "sim"
        assert outcome.result == simulate_config(rubik, config)
        assert outcome.total_us == outcome.result.total_us
        assert outcome.wall_s > 0.0

    def test_fires_are_the_planned_conflict_sets(self, rubik):
        config = RunConfig(n_procs=4)
        outcome = run(rubik, config)
        assert outcome.fires == expected_fires(rubik, config)
        assert len(outcome.fires) == len(rubik.cycles)
        for fire_set in outcome.fires:
            assert list(fire_set) == sorted(fire_set)

    def test_default_config_is_one_processor(self, rubik):
        assert run(rubik).result == simulate_config(rubik, RunConfig())

    def test_faulty_configs_supported(self, rubik):
        config = RunConfig(n_procs=8, overheads=OV8,
                           faults=FaultModel(seed=1, loss_prob=0.1))
        outcome = run(rubik, config)
        assert outcome.result == simulate_config(rubik, config)
        assert outcome.result.retransmits > 0


class TestActorsBackend:
    @pytest.mark.parametrize("n_procs", [1, 2, 8])
    def test_counters_match_simulator(self, rubik, weaver, n_procs):
        for trace in (rubik, weaver):
            config = RunConfig(n_procs=n_procs, overheads=OV8)
            live = run(trace, config, backend="actors")
            sim = run(trace, config)
            assert match_signature(live) == match_signature(sim)
            for lc, sc in zip(live.result.cycles, sim.result.cycles):
                assert lc.proc_busy_us == sc.proc_busy_us
                assert lc.n_messages == sc.n_messages
                assert lc.network_busy_us == sc.network_busy_us
                assert lc.control_busy_us == sc.control_busy_us

    def test_rubik_fire_sequence_exact(self, rubik):
        """The issue's acceptance pin: live actors deliver the exact
        conflict-set sequence the simulator predicts on rubik."""
        config = RunConfig(n_procs=8, overheads=OV8)
        live = run(rubik, config, backend="actors")
        assert live.fires == expected_fires(rubik, config)

    def test_process_transport_matches(self, rubik):
        config = RunConfig(n_procs=2, overheads=OV8)
        live = run(rubik, config, backend="actors",
                   transport="process")
        assert live.backend == "actors"
        assert match_signature(live) == \
            match_signature(run(rubik, config))

    def test_rejects_fault_injection(self, rubik):
        executor = ActorExecutor()
        with pytest.raises(ValueError,
                           match="does not support fault injection"):
            executor.submit(rubik, RunConfig(
                n_procs=2, faults=FaultModel(loss_prob=0.5)))

    def test_rejects_recorder(self, rubik):
        with pytest.raises(ValueError,
                           match="does not support timeline recording"):
            ActorExecutor().submit(rubik, RunConfig(
                n_procs=2, recorder=TimelineRecorder()))

    def test_null_fault_model_is_fine(self, rubik):
        config = RunConfig(n_procs=2, faults=FaultModel())
        live = run(rubik, config, backend="actors")
        assert match_signature(live) == match_signature(run(rubik, config))


class TestRunHandle:
    def test_result_computed_once_and_cached(self):
        calls = []

        def thunk():
            calls.append(1)
            return "outcome"

        handle = RunHandle(thunk)
        assert not handle.done
        assert handle.result() == "outcome"
        assert handle.result() == "outcome"
        assert calls == [1]
        assert handle.done

    def test_errors_cached_and_reraised(self):
        calls = []

        def thunk():
            calls.append(1)
            raise RuntimeError("wedged")

        handle = RunHandle(thunk)
        with pytest.raises(RuntimeError, match="wedged"):
            handle.result()
        with pytest.raises(RuntimeError, match="wedged"):
            handle.result()
        assert calls == [1]
        assert handle.done

    def test_from_future(self):
        import concurrent.futures

        future = concurrent.futures.Future()
        handle = RunHandle.from_future(future, lambda v: v * 2)
        assert not handle.done
        future.set_result(21)
        assert handle.result() == 42
        assert handle.done

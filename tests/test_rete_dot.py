"""Tests for the Graphviz DOT export."""

import pytest

from repro.ops5 import parse_production
from repro.rete import build_network, save_dot, to_dot


def network():
    return build_network([
        parse_production("""
            (p clear-blue
              (block ^name <b1> ^color blue)
              (block ^name <b2> ^on <b1>)
              -(hand ^state busy)
              --> (remove 2))
        """),
    ])


class TestToDot:
    def test_is_a_digraph(self):
        dot = to_dot(network())
        assert dot.startswith('digraph "rete" {')
        assert dot.rstrip().endswith("}")

    def test_contains_production_terminal(self):
        assert '"clear-blue"' in to_dot(network())

    def test_contains_alpha_patterns(self):
        dot = to_dot(network())
        assert "block" in dot
        assert "^color = blue" in dot or "^color blue" in dot

    def test_negative_node_marked(self):
        dot = to_dot(network())
        assert "NOT" in dot
        assert "style=dashed" in dot

    def test_hash_key_annotated(self):
        dot = to_dot(network())
        assert "hash: <b1>=^on" in dot

    def test_edge_sides_labelled(self):
        dot = to_dot(network())
        assert "[label=left, style=bold]" in dot
        assert "[label=right]" in dot

    def test_custom_title_quoted(self):
        dot = to_dot(network(), title='my "net"')
        assert 'digraph "my \\"net\\"" {' in dot

    def test_every_node_id_unique(self):
        dot = to_dot(network())
        declared = [line.split()[0] for line in dot.splitlines()
                    if line.strip().startswith(("a", "n"))
                    and "[" in line and "->" not in line]
        assert len(declared) == len(set(declared))

    def test_shared_node_appears_once(self):
        rules = [parse_production(
            f"(p r{i} (a ^v <x>) (b ^w <x>) --> (remove 1))")
            for i in range(2)]
        dot = to_dot(build_network(rules))
        # One join declaration, two terminals.
        joins = [l for l in dot.splitlines() if "hash:" in l]
        assert len(joins) == 1

    def test_save_dot(self, tmp_path):
        path = tmp_path / "net.dot"
        save_dot(network(), path)
        assert path.read_text().startswith("digraph")

"""The live-tracing contract: invisible when off, exact when on.

What :mod:`repro.obs.trace` claims (and these tests pin):

* tracing a run changes nothing the protocol counts — match
  signatures and every per-cycle counter are bit-identical to the
  untraced run (wall-measured makespans excluded);
* the merged timeline *reconciles exactly* against the run's own
  counters: match-span delivery counts sum to ``proc_activations``,
  cumulative busy snapshots equal ``proc_busy_us`` with ``==``, send
  spans cover ``n_messages - 1``;
* under chaos restarts only the committed generation's spans survive
  the merge, and the coordinator's restart/replay spans reconcile with
  the ``supervise.*`` counters;
* exports mirror the simulator's ``repro profile`` formats, and a
  typed executor failure leaves a post-mortem flight dump behind.
"""

import json

import pytest

from repro.exec import (ActorExecutor, ChaosPolicy, RestartsExhausted,
                        match_signature, run)
from repro.mpc import TABLE_5_1, RunConfig, SupervisePolicy
from repro.obs import get_registry
from repro.obs.trace import (CONTROL, LIVE_BARRIER, LIVE_CYCLE,
                             LIVE_MATCH, LIVE_REPLAY, LIVE_RESTART,
                             LIVE_SEND, FlightRecorder,
                             LiveTraceCollector, chrome_trace_live,
                             dump_flight, live_attribution,
                             live_jsonl, reconcile_live)
from repro.workloads.generator import SectionSpec, generate_section

OV8 = next(o for o in TABLE_5_1 if o.total_us == 8)

FAST = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=5.0,
                       max_restarts=3, restart_delay_s=0.0)


@pytest.fixture(scope="module")
def small():
    return generate_section(SectionSpec(
        name="obs-trace", cycles=5, right_activations=250,
        left_activations=250))


def traced_run(trace, config, **options):
    outcome = ActorExecutor(**options).submit(
        trace, config.replace(live_trace=True)).result()
    assert outcome.live is not None
    return outcome


# ---------------------------------------------------------------------------
# FlightRecorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_drain_round_trip(self):
        recorder = FlightRecorder(3, generation=2)
        recorder.record("match", 7, 1.0, 2.0, n=4, act_id=9, src=1,
                        sent_s=0.5, busy_us=12.5)
        tag, actor, generation, _, _, _, spans, dropped = \
            recorder.drain()
        assert (tag, actor, generation, dropped) == ("spans", 3, 2, 0)
        assert spans == [("match", 7, 1.0, 2.0, 4, 9, 1, 0.5, 12.5)]
        assert len(recorder) == 0

    def test_ring_overwrites_are_counted(self):
        recorder = FlightRecorder(0, capacity=4)
        for i in range(10):
            recorder.record("match", i, 0.0, 1.0)
        assert len(recorder) == 4
        message = recorder.drain()
        spans, dropped = message[6], message[7]
        # Latest history wins, like the namesake.
        assert [s[1] for s in spans] == [6, 7, 8, 9]
        assert dropped == 6

    def test_drain_resets_dropped(self):
        recorder = FlightRecorder(0, capacity=1)
        recorder.record("match", 0, 0.0, 1.0)
        recorder.record("match", 1, 0.0, 1.0)
        assert recorder.drain()[7] == 1
        recorder.record("match", 2, 0.0, 1.0)
        assert recorder.drain()[7] == 0


class TestClockAlignment:
    def test_same_process_aligns_exactly(self):
        collector = LiveTraceCollector("t", 1, "asyncio")
        recorder = FlightRecorder(0)
        start = collector.recorder.perf_base + 0.25
        recorder.record("match", 0, start, start + 0.5)
        collector.add_drain(recorder.drain())
        collector.commit(0, 0)
        timeline = collector.build()
        span = [s for s in timeline.spans if s.actor == 0][0]
        # Same-pid recorders share the perf clock: exact placement on
        # the axis whose origin is the collector's own recorder.
        assert span.start_us == pytest.approx(0.25e6)
        assert span.duration_us == pytest.approx(0.5e6)

    def test_cross_process_anchors_through_wall_clock(self):
        collector = LiveTraceCollector("t", 1, "process")
        own = collector.recorder
        # A fabricated drain from a different pid whose perf clock has
        # an arbitrary origin: the wall base pins it to +1 s.
        drain = ("spans", 0, 0, 1000.0, own.wall_base + 1.0,
                 own.pid + 1, [("match", 0, 1000.25, 1000.75, 1, -1,
                                None, 0.0, 0.0)], 0)
        collector.add_drain(drain)
        collector.commit(0, 0)
        timeline = collector.build()
        span = [s for s in timeline.spans if s.actor == 0][0]
        assert span.start_us == pytest.approx(1.25e6, rel=1e-6)
        assert span.duration_us == pytest.approx(0.5e6)

    def test_uncommitted_generation_is_filtered(self):
        collector = LiveTraceCollector("t", 1, "asyncio")
        for generation in (0, 1):
            recorder = FlightRecorder(0, generation=generation)
            recorder.record("match", 0, 0.0, 1.0, n=generation + 1)
            collector.add_drain(recorder.drain())
        collector.commit(0, 1)
        committed = collector.build()
        actor_spans = [s for s in committed.spans if s.actor == 0]
        assert [s.generation for s in actor_spans] == [1]
        everything = collector.build(committed_only=False)
        assert len([s for s in everything.spans if s.actor == 0]) == 2


# ---------------------------------------------------------------------------
# Traced runs: invisibility and exact reconciliation
# ---------------------------------------------------------------------------


class TestTracedRuns:
    def test_bit_invisible_and_reconciles_asyncio(self, small):
        config = RunConfig(n_procs=4, overheads=OV8)
        plain = run(small, config, backend="actors")
        traced = traced_run(small, config)
        assert match_signature(plain) == match_signature(traced)
        reconcile_live(traced.live, traced.result)

    def test_reconciles_mp(self, small):
        config = RunConfig(n_procs=2, overheads=OV8)
        traced = traced_run(small, config, transport="process")
        assert traced.live.transport == "process"
        reconcile_live(traced.live, traced.result)

    def test_span_vocabulary_and_commits(self, small):
        config = RunConfig(n_procs=4, overheads=OV8)
        timeline = traced_run(small, config).live
        categories = {s.category for s in timeline.spans}
        assert {LIVE_CYCLE, LIVE_MATCH, LIVE_SEND,
                LIVE_BARRIER} <= categories
        assert sorted(timeline.committed) \
            == [c.index for c in small.cycles]
        # One coordinator cycle span per committed cycle.
        cycle_spans = [s for s in timeline.spans
                       if s.category == LIVE_CYCLE]
        assert len(cycle_spans) == len(small.cycles)
        assert all(s.actor == CONTROL for s in cycle_spans)

    def test_reconcile_rejects_tampered_counts(self, small):
        config = RunConfig(n_procs=2, overheads=OV8)
        traced = traced_run(small, config)
        timeline = traced.live
        victim = next(i for i, s in enumerate(timeline.spans)
                      if s.category == LIVE_MATCH and s.n > 0)
        span = timeline.spans[victim]
        import dataclasses
        timeline.spans[victim] = dataclasses.replace(span, n=span.n + 1)
        with pytest.raises(ValueError, match="match spans cover"):
            reconcile_live(timeline, traced.result)

    def test_reconcile_rejects_dropped_spans(self, small):
        config = RunConfig(n_procs=2, overheads=OV8)
        timeline = traced_run(small, config).live
        timeline.dropped = 3
        with pytest.raises(ValueError, match="dropped"):
            reconcile_live(timeline, None)


class TestSupervisedTracing:
    def test_supervised_zero_chaos_reconciles(self, small):
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        traced = traced_run(small, config)
        reconcile_live(traced.live, traced.result)

    def test_restart_spans_reconcile_with_counters(self, small):
        """A chaos kill leaves restart/replay spans in the merged
        timeline, the restart count matches the ``supervise.restarts``
        delta, only committed generations survive, and the result is
        still bit-identical to the simulator's."""
        first = small.cycles[0].index
        chaos = ChaosPolicy(seed=3, kills=((first, 1),))
        config = RunConfig(n_procs=4, overheads=OV8, supervise=FAST)
        before = get_registry().counter("supervise.restarts").value
        outcome = ActorExecutor(chaos=chaos).submit(
            small, config.replace(live_trace=True)).result()
        restarts = get_registry().counter(
            "supervise.restarts").value - before
        assert restarts >= 1
        timeline = outcome.live
        restart_spans = [s for s in timeline.spans
                         if s.category == LIVE_RESTART]
        assert len(restart_spans) == restarts
        assert all(s.actor == CONTROL for s in restart_spans)
        # A one-shot kill fails only the first attempt, so no failed
        # *replay* windows exist (those are pinned by the persistent-
        # kill dump test below).
        assert not any(s.category == LIVE_REPLAY
                       for s in timeline.spans)
        # Only the surviving generation's actor spans are merged.
        for index, generation in timeline.committed.items():
            for span in timeline.spans:
                if span.cycle == index and span.actor != CONTROL:
                    assert span.generation == generation
        reconcile_live(timeline, outcome.result)
        sim_sig = match_signature(run(small, config, backend="sim"))
        assert match_signature(outcome) == sim_sig

    def test_exhausted_restarts_dump_flight(self, small, tmp_path,
                                            monkeypatch):
        """A traced run dying with a typed error leaves a post-mortem
        dump: header line plus one JSONL span per recorded span,
        including the failed generations."""
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        first = small.cycles[0].index
        chaos = ChaosPolicy(seed=3, persistent_kills=((first, 0),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        before = get_registry().counter("trace_live.dumps").value
        with pytest.raises(RestartsExhausted):
            ActorExecutor(chaos=chaos).submit(
                small, config.replace(live_trace=True)).result()
        assert get_registry().counter(
            "trace_live.dumps").value == before + 1
        dumps = list(tmp_path.glob("flight-*.jsonl"))
        assert len(dumps) == 1
        lines = dumps[0].read_text().splitlines()
        header = json.loads(lines[0])
        assert header["reason"] == "RestartsExhausted"
        assert header["n_spans"] == len(lines) - 1
        # The coordinator's failure story is in the dump.
        categories = {json.loads(line)["category"]
                      for line in lines[1:]}
        assert LIVE_RESTART in categories
        assert LIVE_REPLAY in categories


# ---------------------------------------------------------------------------
# Attribution and export
# ---------------------------------------------------------------------------


class TestLiveAttribution:
    def test_partition_is_exact(self, small):
        config = RunConfig(n_procs=4, overheads=OV8)
        timeline = traced_run(small, config).live
        section = live_attribution(timeline)
        assert len(section.cycles) == len(small.cycles)
        for cycle in section.cycles:
            cycle.check_sums()  # busy + idle == n_procs * makespan
            assert cycle.idle_us == pytest.approx(
                sum(cycle.idle_by_category.values()))
        shares = section.idle_shares()
        if section.idle_us:
            assert sum(shares.values()) == pytest.approx(1.0)


class TestExport:
    def test_chrome_trace_layout(self, small):
        config = RunConfig(n_procs=2, overheads=OV8)
        timeline = traced_run(small, config).live
        payload = chrome_trace_live(timeline)
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # process_name + one thread_name per row (control + actors).
        assert len(meta) == 1 + 1 + timeline.n_procs
        assert len(spans) == len(timeline.spans)
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert names == {"control", "actor 0", "actor 1"}
        assert all(e["dur"] >= 0 for e in spans)
        assert payload["otherData"]["transport"] == "asyncio"

    def test_jsonl_mirrors_spans(self, small):
        config = RunConfig(n_procs=2, overheads=OV8)
        timeline = traced_run(small, config).live
        lines = list(live_jsonl(timeline))
        assert len(lines) == len(timeline.spans)
        first = json.loads(lines[0])
        assert first["trace"] == timeline.trace_name
        assert {"cycle", "proc", "category", "start_us", "end_us",
                "wait_us", "generation"} <= set(first)

"""The conformance harness's case generator: determinism and coverage."""

import collections

import pytest

from repro.check import (PROGRAM_EVERY, TRACE_FAMILIES, ProgramCase,
                         TraceCase, build_case, generate_cases)
from repro.check.generate import PRODUCTION_CATALOGUE
from repro.trace import validate_trace
from repro.trace.events import KIND_NEGATIVE, KIND_TERMINAL
from repro.trace.format import dumps_trace
from repro.workloads import SectionSpec, generate_section


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = list(generate_cases(7, 30))
        second = list(generate_cases(7, 30))
        for a, b in zip(first, second):
            assert a.family == b.family
            if isinstance(a, TraceCase):
                assert dumps_trace(a.trace) == dumps_trace(b.trace)
            else:
                assert a == b

    def test_case_independent_of_budget(self):
        # A repro names (seed, index); rebuilding must not depend on
        # how many cases the original run generated.
        long_run = list(generate_cases(3, 40))
        for index in (0, 11, 25, 39):
            rebuilt = build_case(3, index)
            original = long_run[index]
            assert rebuilt.family == original.family
            if isinstance(original, TraceCase):
                assert dumps_trace(rebuilt.trace) \
                    == dumps_trace(original.trace)
            else:
                assert rebuilt == original

    def test_build_case_rejects_family_drift(self):
        case = build_case(0, 2)
        with pytest.raises(ValueError):
            build_case(0, 2, family="program")
        assert build_case(0, 2, family=case.family).family == case.family

    def test_different_seeds_differ(self):
        a = build_case(0, 0)
        b = build_case(1, 0)
        assert dumps_trace(a.trace) != dumps_trace(b.trace)


class TestCoverage:
    def test_every_family_appears(self):
        families = collections.Counter(
            case.family for case in generate_cases(0, 60))
        for family in TRACE_FAMILIES + ("program",):
            assert families[family] > 0, family

    def test_program_cases_interleaved(self):
        for index in range(3):
            position = PROGRAM_EVERY + index * (PROGRAM_EVERY + 1)
            assert isinstance(build_case(0, position), ProgramCase)

    def test_all_traces_valid(self):
        for case in generate_cases(5, 45):
            if isinstance(case, TraceCase):
                assert validate_trace(case.trace) == []

    def test_program_scripts_well_formed(self):
        for case in generate_cases(5, 60):
            if not isinstance(case, ProgramCase):
                continue
            assert case.rules
            assert set(case.rules) <= set(PRODUCTION_CATALOGUE)
            live = set()
            for op in case.script:
                if op[0] == "add":
                    assert op[1] not in live
                    live.add(op[1])
                else:
                    assert op[1] in live
                    live.remove(op[1])

    def test_hard_case_features_present(self):
        # The bias families must actually produce their pathology.
        seen_negative = seen_empty_cycle = seen_terminal = False
        for case in generate_cases(0, 80):
            if not isinstance(case, TraceCase):
                continue
            for cycle in case.trace:
                if not cycle.activations:
                    seen_empty_cycle = True
                for act in cycle:
                    if act.kind == KIND_NEGATIVE:
                        seen_negative = True
                    if act.kind == KIND_TERMINAL:
                        seen_terminal = True
        assert seen_negative and seen_empty_cycle and seen_terminal

    def test_cross_product_concentrates_one_bucket(self):
        case = build_case(0, 1)
        assert case.family == "cross_product"
        keys = {act.key for cycle in case.trace for act in cycle
                if act.side == "left" and act.parent_id is None}
        assert len(keys) == 1


class TestGeneratorKnobs:
    def test_neg_fraction_produces_negative_kinds(self):
        spec = SectionSpec(name="neg", left_activations=200,
                           right_activations=0, neg_fraction=0.5)
        trace = generate_section(spec)
        kinds = collections.Counter(
            act.kind for cycle in trace for act in cycle)
        assert kinds[KIND_NEGATIVE] > 0

    def test_burst_pairs_alternate_tags_on_one_bucket(self):
        spec = SectionSpec(name="burst", left_activations=100,
                           right_activations=0, left_burst_pairs=3,
                           left_roots_fraction=1.0)
        trace = generate_section(spec)
        cycle = trace.cycles[0]
        burst = [act for act in cycle if act.node_id == 101][:6]
        assert [a.tag for a in burst] == ["+", "-", "+", "-", "+", "-"]
        assert len({a.key for a in burst}) == 1

    def test_default_knobs_change_nothing(self):
        # The new SectionSpec fields must not perturb existing traces
        # (canned sections, trace cache keys, Table 5-2 exactness).
        base = SectionSpec(name="same", seed=9)
        explicit = SectionSpec(name="same", seed=9, neg_fraction=0.0,
                               left_burst_pairs=0)
        assert dumps_trace(generate_section(base)) \
            == dumps_trace(generate_section(explicit))

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            SectionSpec(neg_fraction=1.5).validate()
        with pytest.raises(ValueError):
            SectionSpec(left_burst_pairs=-1).validate()

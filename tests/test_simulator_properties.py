"""Property-based tests of the MPC simulator over random valid traces.

A hypothesis strategy generates arbitrary causal activation forests;
the simulator must then satisfy the physics of the model regardless of
trace shape: speedups bounded by the machine size, busy time conserved,
more overhead never helping, determinism, and serialization consistency.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (CostModel, OverheadModel, ZERO_OVERHEADS,
                       RandomMapping, RunConfig, simulate,
                       simulate_base, simulate_config,
                       simulate_master_copy, simulate_pairs,
                       simulate_replicated, speedup)
from repro.rete.hashing import BucketKey
from repro.trace import (CycleTrace, SectionTrace, TraceActivation,
                         dumps_trace, loads_trace, validate_trace)


@st.composite
def random_traces(draw):
    """A random valid section trace: 1-3 cycles of random forests."""
    n_cycles = draw(st.integers(min_value=1, max_value=3))
    trace = SectionTrace(name="random")
    for cycle_index in range(1, n_cycles + 1):
        cycle = CycleTrace(index=cycle_index)
        n_roots = draw(st.integers(min_value=1, max_value=8))
        next_id = 1
        frontier = []
        for _ in range(n_roots):
            node = draw(st.integers(min_value=1, max_value=12))
            side = draw(st.sampled_from(["left", "right"]))
            tag = draw(st.sampled_from(["+", "-"]))
            values = tuple(draw(st.lists(
                st.integers(min_value=0, max_value=5), max_size=2)))
            act = TraceActivation(
                act_id=next_id, parent_id=None, node_id=node,
                kind="join", side=side, tag=tag,
                key=BucketKey(node, values), successors=())
            cycle.add(act)
            frontier.append(act)
            next_id += 1
        # Random expansion: attach children to random frontier members.
        n_children = draw(st.integers(min_value=0, max_value=20))
        for _ in range(n_children):
            parent = draw(st.sampled_from(frontier))
            node = draw(st.integers(min_value=1, max_value=12))
            kind = draw(st.sampled_from(["join", "join", "terminal"]))
            values = () if kind == "terminal" else tuple(draw(st.lists(
                st.integers(min_value=0, max_value=5), max_size=2)))
            act = TraceActivation(
                act_id=next_id, parent_id=parent.act_id, node_id=node,
                kind=kind, side="left", tag=parent.tag,
                key=BucketKey(node, values), successors=())
            cycle.add(act)
            parent.successors = parent.successors + (act.act_id,)
            if kind != "terminal":
                frontier.append(act)
            next_id += 1
        trace.cycles.append(cycle)
    return trace


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16))
def test_speedup_bounded_and_positive(trace, n_procs):
    assert validate_trace(trace) == []
    base = simulate_base(trace)
    run = simulate(trace, n_procs=n_procs)
    s = speedup(base, run)
    assert 0 < s <= n_procs + 1e-9


@given(trace=random_traces(),
       n_procs=st.integers(min_value=2, max_value=16))
def test_work_conservation_zero_overheads(trace, n_procs):
    """At zero overheads, total busy time = base work + (P-1) extra
    constant-test evaluations (the only duplicated work)."""
    base = simulate_base(trace)
    run = simulate(trace, n_procs=n_procs)
    busy = sum(sum(c.proc_busy_us) for c in run.cycles)
    n_cycles = len(trace.cycles)
    expected = base.total_us + (n_procs - 1) * 30.0 * n_cycles
    assert busy == pytest.approx(expected)


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16))
def test_overheads_never_help(trace, n_procs):
    light = simulate(trace, n_procs=n_procs,
                     overheads=OverheadModel(send_us=1, recv_us=1))
    heavy = simulate(trace, n_procs=n_procs,
                     overheads=OverheadModel(send_us=20, recv_us=12))
    assert heavy.total_us >= light.total_us - 1e-9


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=3))
def test_determinism(trace, n_procs, seed):
    mapping = RandomMapping(n_procs=n_procs, seed=seed)
    a = simulate_config(trace, RunConfig(n_procs=n_procs,
                                         mapping=mapping))
    b = simulate_config(trace, RunConfig(
        n_procs=n_procs,
        mapping=RandomMapping(n_procs=n_procs, seed=seed)))
    assert a.total_us == b.total_us
    assert [c.proc_busy_us for c in a.cycles] == \
        [c.proc_busy_us for c in b.cycles]


@given(trace=random_traces())
def test_cycle_times_sum(trace):
    run = simulate(trace, n_procs=4)
    assert run.total_us == pytest.approx(
        sum(c.makespan_us for c in run.cycles))


@given(trace=random_traces())
def test_single_proc_zero_overhead_equals_base(trace):
    base = simulate_base(trace)
    run = simulate(trace, n_procs=1, overheads=ZERO_OVERHEADS)
    assert run.total_us == pytest.approx(base.total_us)


@given(trace=random_traces())
def test_trace_format_roundtrip_preserves_simulation(trace):
    """Serializing and re-reading a trace must not change any timing."""
    back = loads_trace(dumps_trace(trace))
    a = simulate(trace, n_procs=8)
    b = simulate(back, n_procs=8)
    assert a.total_us == pytest.approx(b.total_us)


@given(trace=random_traces(),
       n=st.integers(min_value=1, max_value=8))
def test_variant_simulators_accept_any_valid_trace(trace, n):
    """Pairs / replicated / master-copy must handle arbitrary valid
    traces without error and produce positive times."""
    assert simulate_pairs(trace, n_pairs=n).total_us > 0
    assert simulate_replicated(trace, n).total_us > 0
    assert simulate_master_copy(trace, n).total_us > 0


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=16))
def test_activation_counts_complete(trace, n_procs):
    run = simulate(trace, n_procs=n_procs)
    counted = sum(sum(c.proc_activations) for c in run.cycles)
    expected = sum(1 for c in trace.cycles for a in c
                   if a.kind != "terminal")
    assert counted == expected

"""Mutation testing of the trace validator: random structural
corruptions of valid traces must be detected.

The simulators trust validated traces; a validator hole would let a
corrupt trace skew timing results silently.  Each mutator below breaks
one structural rule; the property test applies random mutators to
random valid traces and requires the validator to object.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rete.hashing import BucketKey
from repro.trace import validate_trace
from repro.trace.events import TraceActivation
from repro.workloads import SectionSpec, generate_section


def small_trace(seed):
    return generate_section(SectionSpec(
        name="mut", cycles=2, right_activations=20, left_activations=30,
        terminals_per_cycle=2, seed=seed))


def pick_act(trace, rng, predicate=lambda a: True):
    candidates = [(c, a) for c in trace.cycles for a in c
                  if predicate(a)]
    if not candidates:
        return None, None
    return candidates[rng.randrange(len(candidates))]


# --- mutators: each returns True if it could apply a corruption --------

def mutate_dangling_parent(trace, rng):
    cycle, act = pick_act(trace, rng, lambda a: a.parent_id is not None)
    if act is None:
        return False
    act.parent_id = cycle.max_act_id() + 1000
    return True


def mutate_orphan_successor(trace, rng):
    cycle, act = pick_act(trace, rng, lambda a: a.successors)
    if act is None:
        return False
    act.successors = act.successors + (cycle.max_act_id() + 999,)
    return True


def mutate_steal_successor(trace, rng):
    cycle, act = pick_act(trace, rng,
                          lambda a: a.parent_id is not None)
    if act is None:
        return False
    # Re-point the child's parent without fixing the old parent's list
    # (the current parent is excluded — keeping it would be a no-op).
    others = [a for a in cycle if a.act_id != act.act_id
              and a.act_id != act.parent_id
              and a.kind != "terminal"
              and a.act_id < act.act_id]
    if not others:
        return False
    act.parent_id = others[rng.randrange(len(others))].act_id
    return True


def mutate_bad_side(trace, rng):
    cycle, act = pick_act(trace, rng)
    if act is None:
        return False
    act.side = "sideways"
    return True


def mutate_bad_tag(trace, rng):
    cycle, act = pick_act(trace, rng)
    if act is None:
        return False
    act.tag = "?"
    return True


def mutate_key_node_mismatch(trace, rng):
    cycle, act = pick_act(trace, rng)
    if act is None:
        return False
    act.key = BucketKey(act.node_id + 17, act.key.values)
    return True


def mutate_terminal_with_successors(trace, rng):
    cycle, act = pick_act(trace, rng, lambda a: a.kind == "terminal")
    if act is None:
        return False
    act.successors = (1,)
    return True


def mutate_generated_right_side(trace, rng):
    cycle, act = pick_act(trace, rng,
                          lambda a: a.parent_id is not None
                          and a.kind != "terminal")
    if act is None:
        return False
    act.side = "right"
    return True


MUTATORS = [mutate_dangling_parent, mutate_orphan_successor,
            mutate_steal_successor, mutate_bad_side, mutate_bad_tag,
            mutate_key_node_mismatch, mutate_terminal_with_successors,
            mutate_generated_right_side]


@pytest.mark.parametrize("mutator", MUTATORS,
                         ids=lambda m: m.__name__)
def test_each_mutator_detected(mutator):
    rng = random.Random(7)
    trace = small_trace(seed=1)
    assert validate_trace(trace) == []
    applied = mutator(trace, rng)
    assert applied, "mutator found nothing to corrupt"
    problems = validate_trace(trace, raise_on_error=False)
    assert problems, f"{mutator.__name__} slipped past the validator"


@given(seed=st.integers(min_value=0, max_value=50),
       mutator_index=st.integers(min_value=0,
                                 max_value=len(MUTATORS) - 1),
       rng_seed=st.integers(min_value=0, max_value=1000))
def test_random_mutations_detected(seed, mutator_index, rng_seed):
    rng = random.Random(rng_seed)
    trace = small_trace(seed=seed)
    mutator = MUTATORS[mutator_index]
    if not mutator(trace, rng):
        return  # nothing to corrupt in this layout
    assert validate_trace(trace, raise_on_error=False)


def test_unmutated_traces_stay_valid():
    for seed in range(5):
        assert validate_trace(small_trace(seed)) == []

"""Unit tests for the OPS5 value model."""

import pytest

from repro.ops5.values import (NIL, coerce_atom, format_value, is_number,
                               is_symbol, values_equal, values_ordered)


class TestTypePredicates:
    def test_int_is_number(self):
        assert is_number(3)

    def test_float_is_number(self):
        assert is_number(3.5)

    def test_bool_is_not_number(self):
        # True == 1 in Python; OPS5 has no booleans, so reject them.
        assert not is_number(True)

    def test_symbol_is_not_number(self):
        assert not is_number("3")

    def test_str_is_symbol(self):
        assert is_symbol("blue")

    def test_number_is_not_symbol(self):
        assert not is_symbol(7)


class TestEquality:
    def test_numbers_equal_across_types(self):
        assert values_equal(1, 1.0)

    def test_symbol_number_never_equal(self):
        assert not values_equal("1", 1)

    def test_symbols_literal(self):
        assert values_equal("blue", "blue")
        assert not values_equal("blue", "Blue")

    def test_nil_equals_nil(self):
        assert values_equal(NIL, "nil")


class TestOrdering:
    def test_numbers_ordered(self):
        assert values_ordered(1, 2.5)

    def test_symbols_not_ordered(self):
        assert not values_ordered("a", "b")

    def test_mixed_not_ordered(self):
        assert not values_ordered("a", 1)


class TestFormatting:
    def test_plain_symbol(self):
        assert format_value("blue") == "blue"

    def test_symbol_with_space_is_quoted(self):
        assert format_value("two words") == "|two words|"

    def test_empty_symbol_is_quoted(self):
        assert format_value("") == "||"

    def test_integer(self):
        assert format_value(42) == "42"

    def test_integral_float_prints_as_int(self):
        # Keeps round-trips type-stable through coerce_atom.
        assert format_value(2.0) == "2"

    def test_fractional_float(self):
        assert format_value(2.5) == "2.5"

    def test_symbol_with_angle_bracket_quoted(self):
        assert format_value("a<b") == "|a<b|"


class TestCoercion:
    def test_int(self):
        assert coerce_atom("42") == 42
        assert isinstance(coerce_atom("42"), int)

    def test_negative_int(self):
        assert coerce_atom("-7") == -7

    def test_float(self):
        assert coerce_atom("2.5") == 2.5

    def test_symbol(self):
        assert coerce_atom("blue") == "blue"

    def test_roundtrip_through_format(self):
        for v in [42, -7, 2.5, "blue", "nil"]:
            assert coerce_atom(format_value(v)) == v

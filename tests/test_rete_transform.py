"""Tests for the Section 5.2 transformations at the network/source level."""

import pytest

from repro.ops5 import NaiveMatcher, parse_production
from repro.ops5.wme import WME
from repro.rete import (build_network, build_unshared_network,
                        copy_and_constraint_ranges,
                        copy_and_constraint_values, sharing_factor)


def signature(matcher):
    return sorted((inst.production.name.split("*")[0],
                   tuple(w.wme_id for w in inst.wmes))
                  for inst in matcher.conflict_set())


class TestUnsharing:
    RULES = [
        "(p o1 (i1 ^v <x>) (i2 ^w <x>) (o ^k 1) --> (remove 1))",
        "(p o2 (i1 ^v <x>) (i2 ^w <x>) (o ^k 2) --> (remove 1))",
    ]

    def test_figure_5_3_shape(self):
        """Two outputs sharing the I1xI2 join: unsharing duplicates it."""
        productions = [parse_production(s) for s in self.RULES]
        shared = build_network(productions)
        unshared = build_unshared_network(productions)
        assert shared.node_count() == 3    # join(i1,i2) + two o-joins
        assert unshared.node_count() == 4  # the i1xi2 join is duplicated

    def test_sharing_factor(self):
        productions = [parse_production(s) for s in self.RULES]
        assert sharing_factor(productions) == pytest.approx(4 / 3)

    def test_sharing_factor_single_production_is_one(self):
        p = parse_production("(p r (a) (b) --> (remove 1))")
        assert sharing_factor([p]) == 1.0


class TestCopyAndConstraintValues:
    def setup_method(self):
        self.production = parse_production("""
            (p sched (game ^slot <s>) (slot ^id <s> ^day <d>)
               --> (remove 1))
        """)

    def test_produces_one_copy_per_value(self):
        copies = copy_and_constraint_values(
            self.production, ce_index=2, attr="day",
            values=["mon", "tue", "wed"])
        assert [p.name for p in copies] == \
            ["sched*cc1", "sched*cc2", "sched*cc3"]

    def test_copies_preserve_rhs(self):
        copies = copy_and_constraint_values(
            self.production, 2, "day", ["mon"])
        assert copies[0].rhs == self.production.rhs

    def test_union_of_copies_equals_original(self):
        copies = copy_and_constraint_values(
            self.production, 2, "day", ["mon", "tue"])
        original = NaiveMatcher()
        original.add_production(self.production)
        split = NaiveMatcher()
        for c in copies:
            split.add_production(c)
        wmes = [
            WME(1, "game", {"slot": "s1"}),
            WME(2, "slot", {"id": "s1", "day": "mon"}),
            WME(3, "slot", {"id": "s1", "day": "tue"}),
        ]
        for w in wmes:
            original.add_wme(w)
            split.add_wme(w)
        assert signature(original) == signature(split)

    def test_copies_have_distinct_rete_nodes(self):
        """The whole point: distinct node-ids give distinct hash buckets."""
        copies = copy_and_constraint_values(
            self.production, 2, "day", ["mon", "tue", "wed"])
        net = build_network(copies)
        # No sharing possible across the constrained CEs.
        assert net.node_count() == 3

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            copy_and_constraint_values(self.production, 2, "day", [])

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError):
            copy_and_constraint_values(self.production, 2, "day",
                                       ["mon", "mon"])

    def test_rejects_bad_ce_index(self):
        with pytest.raises(ValueError):
            copy_and_constraint_values(self.production, 9, "day", ["mon"])


class TestCopyAndConstraintRanges:
    def setup_method(self):
        self.production = parse_production("""
            (p route (net ^load <l>) (wire ^load <l>) --> (remove 1))
        """)

    def test_ranges_partition_domain(self):
        copies = copy_and_constraint_ranges(
            self.production, 1, "load", [0, 10, 20])
        assert len(copies) == 2
        original = NaiveMatcher()
        original.add_production(self.production)
        split = NaiveMatcher()
        for c in copies:
            split.add_production(c)
        # Values across the whole domain including both boundaries.
        for i, load in enumerate([0, 5, 10, 15, 20]):
            w1 = WME(2 * i + 1, "net", {"load": load})
            w2 = WME(2 * i + 2, "wire", {"load": load})
            for m in (original, split):
                m.add_wme(w1)
                m.add_wme(w2)
        assert signature(original) == signature(split)

    def test_no_double_match_at_interior_boundary(self):
        copies = copy_and_constraint_ranges(
            self.production, 1, "load", [0, 10, 20])
        split = NaiveMatcher()
        for c in copies:
            split.add_production(c)
        split.add_wme(WME(1, "net", {"load": 10}))
        split.add_wme(WME(2, "wire", {"load": 10}))
        assert len(split.conflict_set()) == 1

    def test_rejects_single_boundary(self):
        with pytest.raises(ValueError):
            copy_and_constraint_ranges(self.production, 1, "load", [0])

    def test_rejects_nonincreasing_boundaries(self):
        with pytest.raises(ValueError):
            copy_and_constraint_ranges(self.production, 1, "load",
                                       [0, 0, 10])

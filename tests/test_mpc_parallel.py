"""Tests for the parallel sweep engine and the optimized simulator.

The contract under test is determinism: any worker count must produce
results bit-identical to the serial path, and the optimized event loop
must match :mod:`repro.mpc._reference` (the preserved original
implementation) exactly.
"""

import os

import pytest

import repro.mpc.parallel as parallel_mod
from repro.mpc import (TABLE_5_1, GreedyMappingFactory, GridPoint,
                       RandomMapping, RoundRobinMapping, overhead_sweep,
                       resolve_workers, run_grid, set_default_workers,
                       simulate, speedup_curve)
from repro.mpc._reference import simulate_reference
from repro.mpc.costmodel import CostModel
from repro.workloads import rubik_section, tourney_section, weaver_section

PROCS = [1, 4, 16]


def _kill_worker(n_procs):
    """Unpickling this payload hard-kills the worker process."""
    os._exit(17)


class CrashOnUnpickleMapping(RoundRobinMapping):
    """Behaves like round robin in-process, but any worker process that
    unpickles it dies instantly — simulating a crashing/OOM-killed
    worker for the sweep-engine fault-tolerance tests."""

    def __reduce__(self):
        return (_kill_worker, (self.n_procs,))


@pytest.fixture(scope="module")
def sections():
    return [rubik_section(), tourney_section(), weaver_section()]


@pytest.fixture(autouse=True)
def reset_default_workers():
    yield
    set_default_workers(None)


@pytest.fixture(autouse=True)
def force_pool(monkeypatch):
    """Push every test past the pool-benefit gate.

    The gate (:func:`repro.mpc.parallel.pool_worth_it`) would silently
    serialize the pool machinery on small traces or 1-CPU hosts —
    correct in production, but these tests exist to exercise the pool
    itself.  The gate's own tests override this per-case.
    """
    monkeypatch.setenv(parallel_mod.ENV_FORCE_POOL, "1")


def assert_results_equal(a, b):
    assert a.total_us == b.total_us
    assert a.n_messages == b.n_messages
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        assert ca == cb


def assert_curves_equal(ca, cb):
    assert ca.label == cb.label
    assert ca.proc_counts == cb.proc_counts
    assert ca.speedups == cb.speedups, "parallel sweep changed speedups"
    for ra, rb in zip(ca.results, cb.results):
        assert_results_equal(ra, rb)


class TestBenefitGate:
    """pool_worth_it and its wiring into run_grid (ROADMAP: the
    parallel sweep must never lose to serial on a 1-CPU box)."""

    def test_env_overrides(self, monkeypatch, sections):
        monkeypatch.setenv(parallel_mod.ENV_FORCE_POOL, "1")
        assert parallel_mod.pool_worth_it(sections[2], 4)
        monkeypatch.setenv(parallel_mod.ENV_FORCE_POOL, "0")
        assert not parallel_mod.pool_worth_it(sections[2], 4)

    def test_single_cpu_never_pools(self, monkeypatch, sections):
        monkeypatch.delenv(parallel_mod.ENV_FORCE_POOL, raising=False)
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        assert not parallel_mod.pool_worth_it(sections[0], 1000)

    def test_small_work_stays_serial(self, monkeypatch, sections):
        monkeypatch.delenv(parallel_mod.ENV_FORCE_POOL, raising=False)
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        weaver = sections[2]
        assert not parallel_mod.pool_worth_it(weaver, 1)
        big_enough = (parallel_mod.MIN_POOL_ACTIVATIONS
                      // weaver.total_activations() + 1)
        assert parallel_mod.pool_worth_it(weaver, big_enough)

    def test_gated_grid_matches_and_logs_serial(self, monkeypatch,
                                                caplog, sections):
        import logging

        monkeypatch.delenv(parallel_mod.ENV_FORCE_POOL, raising=False)
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        weaver = sections[2]
        points = [GridPoint(n_procs=n) for n in PROCS]
        with caplog.at_level(logging.DEBUG, logger="repro.mpc.parallel"):
            gated = run_grid(weaver, points, workers=2)
        assert "grid_serial" in caplog.text, \
            "benefit gate should have taken the serial path"
        serial = run_grid(weaver, points, workers=1)
        for a, b in zip(gated, serial):
            assert_results_equal(a, b)


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(parallel_mod.ENV_WORKERS, "7")
        assert resolve_workers(3) == 3

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(parallel_mod.ENV_WORKERS, "5")
        set_default_workers(2)
        assert resolve_workers() == 5

    def test_module_default(self, monkeypatch):
        monkeypatch.delenv(parallel_mod.ENV_WORKERS, raising=False)
        set_default_workers(4)
        assert resolve_workers() == 4

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(parallel_mod.ENV_WORKERS, raising=False)
        set_default_workers(None)
        assert resolve_workers() >= 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            set_default_workers(0)


class TestRunGrid:
    def test_matches_direct_simulation(self, sections):
        trace = sections[0]
        points = [GridPoint(n_procs=n, overheads=oh)
                  for oh in TABLE_5_1[:2] for n in PROCS]
        serial = run_grid(trace, points, workers=1)
        fanned = run_grid(trace, points, workers=2)
        assert len(serial) == len(fanned) == len(points)
        for point, a, b in zip(points, serial, fanned):
            assert_results_equal(a, b)
            direct = simulate(trace, n_procs=point.n_procs,
                              overheads=point.overheads)
            assert_results_equal(a, direct)

    def test_unpicklable_grid_falls_back_to_serial(self, sections):
        trace = sections[0]
        # A closure is unpicklable; the grid must still evaluate.
        factory = lambda cycle: RandomMapping(n_procs=4, seed=cycle.index)
        points = [GridPoint(n_procs=4, mapping_factory=factory)]
        (result,) = run_grid(trace, points, workers=2)
        (expected,) = run_grid(trace, points, workers=1)
        assert_results_equal(result, expected)


class TestWorkerCrashRecovery:
    """A crashed worker must not kill the sweep: the engine retries the
    stranded points in a fresh pool and then falls back to in-process
    serial evaluation, producing results identical to the serial path."""

    def crash_points(self, n_crash=1):
        points = [GridPoint(n_procs=n, overheads=oh)
                  for oh in TABLE_5_1[:2] for n in PROCS]
        # Poison one or more points: their mapping kills any worker
        # that unpickles it, but works normally in-process.
        for i in range(n_crash):
            slot = 2 * i + 1
            points[slot] = GridPoint(
                n_procs=4, overheads=TABLE_5_1[1],
                mapping=CrashOnUnpickleMapping(n_procs=4))
        return points

    def test_crash_falls_back_and_matches_serial(self, sections, caplog):
        trace = sections[0]
        points = self.crash_points()
        serial = run_grid(trace, points, workers=1)
        with caplog.at_level("INFO", logger="repro.mpc.parallel"):
            fanned = run_grid(trace, points, workers=2)
        assert len(fanned) == len(serial) == len(points)
        for a, b in zip(serial, fanned):
            assert_results_equal(a, b)
        # The recovery was logged, naming the recovered points.
        assert any("serial fallback" in rec.message
                   for rec in caplog.records)

    def test_pool_break_emits_metric_and_structured_log(self, sections,
                                                        caplog):
        from repro.obs import get_registry
        trace = sections[0]
        points = self.crash_points()
        counter = get_registry().counter("parallel.pool_broken")
        before = counter.value
        with caplog.at_level("WARNING", logger="repro.mpc.parallel"):
            run_grid(trace, points, workers=2)
        assert counter.value > before
        broken = [rec.message for rec in caplog.records
                  if rec.message.startswith("pool_broken")]
        assert broken, "expected a structured pool_broken log line"
        assert any("action=retry_fresh_pool" in msg
                   or "action=serial_fallback" in msg
                   for msg in broken)

    def test_multiple_crashes_still_complete(self, sections):
        trace = sections[0]
        points = self.crash_points(n_crash=2)
        serial = run_grid(trace, points, workers=1)
        fanned = run_grid(trace, points, workers=3)
        for a, b in zip(serial, fanned):
            assert_results_equal(a, b)

    def test_healthy_pool_unaffected(self, sections, caplog):
        """No crash => no recovery machinery engages, no warnings."""
        trace = sections[0]
        points = [GridPoint(n_procs=n) for n in PROCS]
        with caplog.at_level("WARNING", logger="repro.mpc.parallel"):
            results = run_grid(trace, points, workers=2)
        assert not caplog.records
        for point, result in zip(points, results):
            assert_results_equal(
                result, simulate(trace, n_procs=point.n_procs))


class TestSweepEquivalence:
    def test_speedup_curve_parallel_equals_serial(self, sections):
        for trace in sections:
            serial = speedup_curve(trace, PROCS, workers=1)
            fanned = speedup_curve(trace, PROCS, workers=2)
            assert_curves_equal(serial, fanned)

    def test_speedup_curve_with_overheads(self, sections):
        trace = sections[1]
        serial = speedup_curve(trace, PROCS, overheads=TABLE_5_1[-1],
                               workers=1)
        fanned = speedup_curve(trace, PROCS, overheads=TABLE_5_1[-1],
                               workers=3)
        assert_curves_equal(serial, fanned)

    def test_speedup_curve_with_greedy_factory(self, sections):
        trace = sections[0]
        serial = speedup_curve(
            trace, PROCS, workers=1,
            mapping_factory_for=lambda n: GreedyMappingFactory(n))
        fanned = speedup_curve(
            trace, PROCS, workers=2,
            mapping_factory_for=lambda n: GreedyMappingFactory(n))
        assert_curves_equal(serial, fanned)

    def test_overhead_sweep_parallel_equals_serial(self, sections):
        trace = sections[2]
        serial = overhead_sweep(trace, PROCS, workers=1)
        fanned = overhead_sweep(trace, PROCS, workers=3)
        assert len(serial) == len(fanned) == len(TABLE_5_1)
        for ca, cb in zip(serial, fanned):
            assert_curves_equal(ca, cb)

    def test_default_workers_route_still_exact(self, sections):
        """workers=None routes through resolution; results unchanged."""
        trace = sections[0]
        set_default_workers(2)
        fanned = speedup_curve(trace, PROCS)
        set_default_workers(1)
        serial = speedup_curve(trace, PROCS)
        assert_curves_equal(serial, fanned)


class TestOptimizedSimulatorMatchesReference:
    @pytest.mark.parametrize("n_procs", [1, 4, 16, 32])
    def test_zero_overheads(self, sections, n_procs):
        for trace in sections:
            assert_results_equal(
                simulate(trace, n_procs=n_procs),
                simulate_reference(trace, n_procs))

    @pytest.mark.parametrize("overheads", TABLE_5_1,
                             ids=lambda m: m.label())
    def test_table_5_1_overheads(self, sections, overheads):
        trace = sections[0]
        assert_results_equal(
            simulate(trace, n_procs=16, overheads=overheads),
            simulate_reference(trace, 16, overheads=overheads))

    def test_delete_search_costs(self, sections):
        costs = CostModel(delete_search_us=2.0)
        for trace in sections:
            assert_results_equal(
                simulate(trace, n_procs=8, costs=costs),
                simulate_reference(trace, 8, costs=costs))

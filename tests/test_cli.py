"""Tests for the ``python -m repro`` command-line interface."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300)


class TestInProcess:
    def test_sections(self, capsys):
        assert main(["sections"]) == 0
        out = capsys.readouterr().out
        assert "10750" in out and "8502" in out and "416" in out

    def test_simulate_defaults(self, capsys):
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "weaver" in out

    def test_simulate_rejects_bad_overhead(self, capsys):
        assert main(["simulate", "--overhead", "7"]) == 2
        assert "must be one of" in capsys.readouterr().err

    def test_diagnose_section(self, capsys):
        assert main(["diagnose", "--section", "weaver"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck-generator" in out
        assert "unshare" in out

    def test_diagnose_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(["trace", "--section", "tourney",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        assert "weaver" in capsys.readouterr().out

    def test_autotune_command(self, tmp_path, capsys):
        out_file = tmp_path / "tuned.trace"
        assert main(["autotune", "--section", "weaver",
                     "--procs", "16", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert out_file.exists()

    def test_generate_then_simulate_and_diagnose(self, tmp_path,
                                                 capsys):
        out_file = tmp_path / "custom.trace"
        assert main(["generate", "--left", "300", "--right", "100",
                     "--buckets", "2", "--skew", "2.0",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "300 left / 100 right" in out
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        capsys.readouterr()
        # Two hot buckets per cycle -> the diagnostics should object.
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_run_ops5_source(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (write done (crlf)) (remove 1))
        """)
        assert main(["run", str(source)]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "1 firings" in out

    def test_run_verbose_lists_firings(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (remove 1))
        """)
        assert main(["run", str(source), "--verbose"]) == 0
        assert "cycle 1: go" in capsys.readouterr().out

    def test_simulate_with_faults(self, capsys):
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "16", "--overhead", "8",
                     "--loss", "0.01", "--fault-seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "loss=0.01" in out
        assert "retrans" in out

    def test_fault_sweep_command(self, capsys):
        assert main(["fault-sweep", "--section", "weaver",
                     "--procs", "8", "--loss", "0", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "speedup" in out


class TestErrorPaths:
    """Bad input exits non-zero with a one-line error on stderr."""

    def one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.strip().count("\n") == 0, "error must be one line"
        return err

    def test_missing_trace_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.trace"
        assert main(["simulate", "--trace-file", str(missing)]) == 2
        assert "cannot read trace file" in self.one_line_error(capsys)

    def test_malformed_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("this is not a trace\n", encoding="utf-8")
        assert main(["simulate", "--trace-file", str(bad)]) == 2
        assert "malformed trace file" in self.one_line_error(capsys)

    def test_truncated_trace_file(self, tmp_path, capsys):
        whole = tmp_path / "ok.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(whole)]) == 0
        capsys.readouterr()
        torn = tmp_path / "torn.trace"
        text = whole.read_text(encoding="utf-8")
        torn.write_text(text[: len(text) // 2].rsplit(" ", 1)[0],
                        encoding="utf-8")
        assert main(["diagnose", "--trace-file", str(torn)]) == 2
        assert "trace file" in self.one_line_error(capsys)

    def test_loss_out_of_range(self, capsys):
        assert main(["simulate", "--loss", "1.5"]) == 2
        assert "--loss" in self.one_line_error(capsys)

    def test_negative_jitter(self, capsys):
        assert main(["simulate", "--loss", "0.1",
                     "--jitter", "-3"]) == 2
        assert "--jitter" in self.one_line_error(capsys)

    def test_zero_procs(self, capsys):
        assert main(["simulate", "--procs", "0"]) == 2
        assert "--procs" in self.one_line_error(capsys)

    def test_bad_timeout(self, capsys):
        assert main(["fault-sweep", "--timeout", "0"]) == 2
        assert "--timeout" in self.one_line_error(capsys)

    def test_fault_sweep_bad_loss(self, capsys):
        assert main(["fault-sweep", "--loss", "0", "2"]) == 2
        assert "--loss" in self.one_line_error(capsys)


class TestSubprocess:
    def test_module_entry_point(self):
        result = run_cli("sections")
        assert result.returncode == 0
        assert "Table 5-2" in result.stdout

    def test_figures_single(self):
        result = run_cli("figures", "table5_1")
        assert result.returncode == 0
        assert "Table 5-1" in result.stdout

    def test_figures_unknown(self):
        result = run_cli("figures", "fig0_0")
        assert result.returncode == 2
        assert "unknown figure" in result.stderr

    def test_no_command_is_error(self):
        result = run_cli()
        assert result.returncode != 0


class TestObservability:
    """The profiling/report surfaces added with the timeline layer."""

    def test_profile_table(self, capsys):
        assert main(["profile", "weaver", "--procs", "8"]) == 0
        out = capsys.readouterr().out
        assert "idle time:" in out
        assert "critical path" in out
        assert "proc 0" in out          # the Gantt chart
        assert "B broadcast" in out     # the legend

    def test_profile_chrome_is_perfetto_loadable(self, tmp_path,
                                                 capsys):
        import json as json_mod
        out_file = tmp_path / "weaver.trace.json"
        assert main(["profile", "weaver", "--procs", "4",
                     "--format", "chrome", "--out", str(out_file)]) == 0
        assert "perfetto" in capsys.readouterr().out
        data = json_mod.loads(out_file.read_text(encoding="utf-8"))
        events = data["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        assert any(e["ph"] == "X" for e in events)

    def test_profile_json_attribution(self, capsys):
        import json as json_mod
        assert main(["profile", "weaver", "--procs", "8",
                     "--format", "json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["trace"] == "weaver"
        assert payload["n_procs"] == 8
        assert set(payload["idle_shares"]) == {
            "broadcast_floor", "chain_wait", "comm_overhead",
            "imbalance", "protocol"}

    def test_profile_jsonl_spans(self, tmp_path, capsys):
        import json as json_mod
        out_file = tmp_path / "spans.jsonl"
        assert main(["profile", "weaver", "--procs", "2",
                     "--format", "jsonl", "--out", str(out_file)]) == 0
        lines = out_file.read_text(encoding="utf-8").splitlines()
        assert lines
        record = json_mod.loads(lines[0])
        assert "category" in record and "proc" in record

    def test_profile_trace_file_target(self, tmp_path, capsys):
        out_file = tmp_path / "w.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["profile", str(out_file), "--procs", "4"]) == 0
        assert "idle time:" in capsys.readouterr().out

    def test_profile_under_faults(self, capsys):
        assert main(["profile", "weaver", "--procs", "8",
                     "--loss", "0.05", "--fault-seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "loss=0.05" in out

    def test_profile_unknown_target(self, capsys):
        assert main(["profile", "nonesuch"]) == 2
        assert "cannot read trace file" in capsys.readouterr().err

    def test_simulate_json(self, capsys):
        import json as json_mod
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "8", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["trace"] == "weaver"
        assert [p["n_procs"] for p in payload["points"]] == [1, 8]
        assert payload["points"][1]["speedup"] > \
            payload["points"][0]["speedup"]

    def test_simulate_timeline_writes_chrome_trace(self, tmp_path,
                                                   capsys):
        import json as json_mod
        out_file = tmp_path / "sim.trace.json"
        assert main(["simulate", "--section", "weaver", "--procs", "8",
                     "--timeline", str(out_file)]) == 0
        assert "perfetto" in capsys.readouterr().out
        data = json_mod.loads(out_file.read_text(encoding="utf-8"))
        assert data["traceEvents"]

    def test_simulate_timeline_needs_one_proc_count(self, tmp_path,
                                                    capsys):
        out_file = tmp_path / "sim.trace.json"
        assert main(["simulate", "--section", "weaver",
                     "--procs", "4", "8",
                     "--timeline", str(out_file)]) == 2
        assert "--timeline" in capsys.readouterr().err
        assert not out_file.exists()

    def test_fault_sweep_json(self, capsys):
        import json as json_mod
        assert main(["fault-sweep", "--section", "weaver",
                     "--procs", "8", "--loss", "0", "0.02",
                     "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["loss_rates"] == [0.0, 0.02]
        assert len(payload["speedups"]) == 2
        assert isinstance(payload["monotone"], bool)

    def test_diagnose_includes_measured_attribution(self, capsys):
        assert main(["diagnose", "--section", "weaver",
                     "--procs", "8"]) == 0
        out = capsys.readouterr().out
        assert "measured-idle" in out
        assert "of idle time at 8 procs" in out

    def test_cache_stats_text_and_json(self, capsys):
        import json as json_mod
        assert main(["cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out and "this process:" in out
        assert main(["cache-stats", "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert set(payload["counters"]) == {
            "memory_hits", "disk_hits", "misses", "stores",
            "quarantines"}

    def test_verbosity_flags_accepted(self, capsys):
        assert main(["sections", "-q"]) == 0
        capsys.readouterr()
        assert main(["simulate", "--section", "weaver",
                     "--procs", "4", "-v"]) == 0
        capsys.readouterr()
        assert main(["profile", "weaver", "--procs", "2", "-vv"]) == 0


class TestSuperviseAndChaosFlags:
    def test_run_supervised_actors(self, capsys):
        assert main(["run", "--backend", "actors", "--supervise",
                     "--section", "rubik", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "match the simulator" in out
        assert "supervised" in out

    def test_run_chaos_seed_recovers(self, capsys):
        assert main(["run", "--backend", "actors", "--chaos-seed", "7",
                     "--section", "rubik", "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovered from seeded chaos (seed 7)" in out

    def test_run_chaos_json_payload(self, capsys):
        import json as json_mod
        assert main(["run", "--backend", "actors", "--chaos",
                     "--section", "rubik", "--procs", "2",
                     "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["supervised"] is True
        assert payload["chaos_seed"] == 0
        assert payload["matches_simulator"] is True

    def test_chaos_requires_actors_backend(self, capsys):
        assert main(["run", "--backend", "sim", "--chaos-seed", "1",
                     "--section", "rubik"]) == 2
        assert "actors backend only" in capsys.readouterr().err

    def test_supervise_rejected_on_sim(self, capsys):
        assert main(["run", "--backend", "sim", "--supervise",
                     "--section", "rubik"]) == 2
        assert "live backends only" in capsys.readouterr().err

    def test_run_trace_live_writes_reconciled_trace(self, tmp_path,
                                                    capsys):
        import json as json_mod
        out = tmp_path / "live.trace.json"
        assert main(["run", "--backend", "actors", "--section",
                     "rubik", "--procs", "2", "--trace-live",
                     "--trace-out", str(out), "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["live_trace"]["reconciled"] is True
        assert payload["live_trace"]["spans"] > 0
        trace = json_mod.loads(out.read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])
        assert payload["matches_simulator"] is True

    def test_trace_live_requires_actors_backend(self, capsys):
        assert main(["run", "--backend", "sim", "--trace-live",
                     "--section", "rubik"]) == 2
        assert "actors backend" in capsys.readouterr().err

    def test_trace_out_requires_trace_live(self, capsys):
        assert main(["run", "--backend", "actors", "--trace-out",
                     "x.json", "--section", "rubik"]) == 2
        assert "--trace-live" in capsys.readouterr().err

    def test_json_payloads_carry_obs_snapshot(self, capsys):
        import json as json_mod
        assert main(["simulate", "--section", "rubik", "--procs", "2",
                     "--json"]) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert "obs" in payload and isinstance(payload["obs"], dict)

    def test_loadtest_writes_bench_payload(self, tmp_path, capsys):
        import json as json_mod
        out = tmp_path / "BENCH_served.json"
        assert main(["loadtest", "--sessions", "8", "--duration",
                     "0.2", "--procs", "2", "--out", str(out)]) == 0
        assert "latency p50" in capsys.readouterr().out
        payload = json_mod.loads(out.read_text())
        assert payload["bench"] == "served_loadtest"
        assert payload["sessions"] == 8
        assert payload["completed"] + payload["shed"]["total"] \
            + sum(payload["errors"].values()) == 8
        assert set(payload["latency_s"]) >= {"p50", "p95", "p99"}

    def test_loadtest_rejects_bad_duration(self, capsys):
        assert main(["loadtest", "--duration", "0"]) == 2
        assert "--duration" in capsys.readouterr().err

    def test_diagnose_live_attribution(self, capsys):
        assert main(["diagnose", "--section", "rubik", "--procs", "2",
                     "--live"]) == 0
        assert "[live-idle]" in capsys.readouterr().out

    def test_check_only_filter(self, capsys):
        assert main(["check", "--only", "compressed_vs_exact_faults",
                     "--budget", "10"]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_check_only_rejects_unknown_name(self, capsys):
        assert main(["check", "--only", "nope", "--budget", "2"]) == 2
        assert "unknown check name" in capsys.readouterr().err

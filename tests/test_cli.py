"""Tests for the ``python -m repro`` command-line interface."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300)


class TestInProcess:
    def test_sections(self, capsys):
        assert main(["sections"]) == 0
        out = capsys.readouterr().out
        assert "10750" in out and "8502" in out and "416" in out

    def test_simulate_defaults(self, capsys):
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "weaver" in out

    def test_simulate_rejects_bad_overhead(self, capsys):
        assert main(["simulate", "--overhead", "7"]) == 2
        assert "must be one of" in capsys.readouterr().err

    def test_diagnose_section(self, capsys):
        assert main(["diagnose", "--section", "weaver"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck-generator" in out
        assert "unshare" in out

    def test_diagnose_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(["trace", "--section", "tourney",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        assert "weaver" in capsys.readouterr().out

    def test_autotune_command(self, tmp_path, capsys):
        out_file = tmp_path / "tuned.trace"
        assert main(["autotune", "--section", "weaver",
                     "--procs", "16", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert out_file.exists()

    def test_generate_then_simulate_and_diagnose(self, tmp_path,
                                                 capsys):
        out_file = tmp_path / "custom.trace"
        assert main(["generate", "--left", "300", "--right", "100",
                     "--buckets", "2", "--skew", "2.0",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "300 left / 100 right" in out
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        capsys.readouterr()
        # Two hot buckets per cycle -> the diagnostics should object.
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_run_ops5_source(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (write done (crlf)) (remove 1))
        """)
        assert main(["run", str(source)]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "1 firings" in out

    def test_run_verbose_lists_firings(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (remove 1))
        """)
        assert main(["run", str(source), "--verbose"]) == 0
        assert "cycle 1: go" in capsys.readouterr().out


class TestSubprocess:
    def test_module_entry_point(self):
        result = run_cli("sections")
        assert result.returncode == 0
        assert "Table 5-2" in result.stdout

    def test_figures_single(self):
        result = run_cli("figures", "table5_1")
        assert result.returncode == 0
        assert "Table 5-1" in result.stdout

    def test_figures_unknown(self):
        result = run_cli("figures", "fig0_0")
        assert result.returncode == 2
        assert "unknown figure" in result.stderr

    def test_no_command_is_error(self):
        result = run_cli()
        assert result.returncode != 0

"""Tests for the ``python -m repro`` command-line interface."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*args):
    return subprocess.run([sys.executable, "-m", "repro", *args],
                          capture_output=True, text=True, timeout=300)


class TestInProcess:
    def test_sections(self, capsys):
        assert main(["sections"]) == 0
        out = capsys.readouterr().out
        assert "10750" in out and "8502" in out and "416" in out

    def test_simulate_defaults(self, capsys):
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "weaver" in out

    def test_simulate_rejects_bad_overhead(self, capsys):
        assert main(["simulate", "--overhead", "7"]) == 2
        assert "must be one of" in capsys.readouterr().err

    def test_diagnose_section(self, capsys):
        assert main(["diagnose", "--section", "weaver"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck-generator" in out
        assert "unshare" in out

    def test_diagnose_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        assert main(["trace", "--section", "tourney",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        assert "weaver" in capsys.readouterr().out

    def test_autotune_command(self, tmp_path, capsys):
        out_file = tmp_path / "tuned.trace"
        assert main(["autotune", "--section", "weaver",
                     "--procs", "16", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert out_file.exists()

    def test_generate_then_simulate_and_diagnose(self, tmp_path,
                                                 capsys):
        out_file = tmp_path / "custom.trace"
        assert main(["generate", "--left", "300", "--right", "100",
                     "--buckets", "2", "--skew", "2.0",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "300 left / 100 right" in out
        assert main(["simulate", "--trace-file", str(out_file),
                     "--procs", "8"]) == 0
        capsys.readouterr()
        # Two hot buckets per cycle -> the diagnostics should object.
        assert main(["diagnose", "--trace-file", str(out_file)]) == 0
        assert "cross-product" in capsys.readouterr().out

    def test_run_ops5_source(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (write done (crlf)) (remove 1))
        """)
        assert main(["run", str(source)]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "1 firings" in out

    def test_run_verbose_lists_firings(self, tmp_path, capsys):
        source = tmp_path / "prog.ops"
        source.write_text("""
            (startup (make a))
            (p go (a) --> (remove 1))
        """)
        assert main(["run", str(source), "--verbose"]) == 0
        assert "cycle 1: go" in capsys.readouterr().out

    def test_simulate_with_faults(self, capsys):
        assert main(["simulate", "--section", "weaver",
                     "--procs", "1", "16", "--overhead", "8",
                     "--loss", "0.01", "--fault-seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "loss=0.01" in out
        assert "retrans" in out

    def test_fault_sweep_command(self, capsys):
        assert main(["fault-sweep", "--section", "weaver",
                     "--procs", "8", "--loss", "0", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "speedup" in out


class TestErrorPaths:
    """Bad input exits non-zero with a one-line error on stderr."""

    def one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.strip().count("\n") == 0, "error must be one line"
        return err

    def test_missing_trace_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.trace"
        assert main(["simulate", "--trace-file", str(missing)]) == 2
        assert "cannot read trace file" in self.one_line_error(capsys)

    def test_malformed_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("this is not a trace\n", encoding="utf-8")
        assert main(["simulate", "--trace-file", str(bad)]) == 2
        assert "malformed trace file" in self.one_line_error(capsys)

    def test_truncated_trace_file(self, tmp_path, capsys):
        whole = tmp_path / "ok.trace"
        assert main(["trace", "--section", "weaver",
                     "--out", str(whole)]) == 0
        capsys.readouterr()
        torn = tmp_path / "torn.trace"
        text = whole.read_text(encoding="utf-8")
        torn.write_text(text[: len(text) // 2].rsplit(" ", 1)[0],
                        encoding="utf-8")
        assert main(["diagnose", "--trace-file", str(torn)]) == 2
        assert "trace file" in self.one_line_error(capsys)

    def test_loss_out_of_range(self, capsys):
        assert main(["simulate", "--loss", "1.5"]) == 2
        assert "--loss" in self.one_line_error(capsys)

    def test_negative_jitter(self, capsys):
        assert main(["simulate", "--loss", "0.1",
                     "--jitter", "-3"]) == 2
        assert "--jitter" in self.one_line_error(capsys)

    def test_zero_procs(self, capsys):
        assert main(["simulate", "--procs", "0"]) == 2
        assert "--procs" in self.one_line_error(capsys)

    def test_bad_timeout(self, capsys):
        assert main(["fault-sweep", "--timeout", "0"]) == 2
        assert "--timeout" in self.one_line_error(capsys)

    def test_fault_sweep_bad_loss(self, capsys):
        assert main(["fault-sweep", "--loss", "0", "2"]) == 2
        assert "--loss" in self.one_line_error(capsys)


class TestSubprocess:
    def test_module_entry_point(self):
        result = run_cli("sections")
        assert result.returncode == 0
        assert "Table 5-2" in result.stdout

    def test_figures_single(self):
        result = run_cli("figures", "table5_1")
        assert result.returncode == 0
        assert "Table 5-1" in result.stdout

    def test_figures_unknown(self):
        result = run_cli("figures", "fig0_0")
        assert result.returncode == 2
        assert "unknown figure" in result.stderr

    def test_no_command_is_error(self):
        result = run_cli()
        assert result.returncode != 0

"""Tests for sweep helpers (SpeedupCurve, overhead_sweep, formatting)."""

import pytest

from repro.mpc import (TABLE_5_1, OverheadModel, SpeedupCurve,
                       format_curves, overhead_sweep, speedup_curve,
                       speedup_loss)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def fanout_trace(n_roots=24):
    cycle = CycleTrace(index=1)
    i = 1
    for n in range(n_roots):
        cycle.add(TraceActivation(
            act_id=i, parent_id=None, node_id=n + 1, kind="join",
            side="right", tag="+", key=BucketKey(n + 1, ()),
            successors=(i + 1,)))
        cycle.add(TraceActivation(
            act_id=i + 1, parent_id=i, node_id=100 + n, kind="join",
            side="left", tag="+", key=BucketKey(100 + n, ()),
            successors=()))
        i += 2
    return SectionTrace(name="fan", cycles=[cycle])


class TestSpeedupCurve:
    def test_curve_has_one_point_per_proc_count(self):
        curve = speedup_curve(fanout_trace(), [1, 2, 4])
        assert curve.proc_counts == [1, 2, 4]
        assert len(curve.speedups) == 3
        assert len(curve.results) == 3

    def test_one_processor_speedup_is_one(self):
        curve = speedup_curve(fanout_trace(), [1])
        assert curve.speedups[0] == pytest.approx(1.0)

    def test_peak(self):
        curve = SpeedupCurve(label="x", proc_counts=[1, 2, 4],
                             speedups=[1.0, 1.9, 1.5])
        assert curve.peak() == (2, 1.9)

    def test_at(self):
        curve = SpeedupCurve(label="x", proc_counts=[1, 2],
                             speedups=[1.0, 1.8])
        assert curve.at(2) == 1.8
        with pytest.raises(ValueError):
            curve.at(16)

    def test_rows_render(self):
        curve = SpeedupCurve(label="x", proc_counts=[8],
                             speedups=[3.25])
        assert curve.rows() == ["    8 procs:   3.25x"]

    def test_default_label_includes_overheads(self):
        curve = speedup_curve(fanout_trace(), [1],
                              overheads=OverheadModel(send_us=5,
                                                      recv_us=3))
        assert "8us" in curve.label

    def test_custom_mapping_for(self):
        from repro.mpc import RandomMapping
        curve = speedup_curve(
            fanout_trace(), [4],
            mapping_for=lambda p: RandomMapping(n_procs=p, seed=2))
        assert curve.speedups[0] > 0


class TestOverheadSweep:
    def test_one_curve_per_setting(self):
        curves = overhead_sweep(fanout_trace(), [1, 4])
        assert len(curves) == len(TABLE_5_1)

    def test_zero_overhead_curve_dominates(self):
        curves = overhead_sweep(fanout_trace(), [1, 4, 8])
        for i in range(len(curves[0].speedups)):
            assert curves[0].speedups[i] >= curves[3].speedups[i] - 1e-9

    def test_speedup_loss(self):
        zero = SpeedupCurve(label="0", proc_counts=[8], speedups=[10.0])
        loaded = SpeedupCurve(label="32", proc_counts=[8],
                              speedups=[7.0])
        assert speedup_loss(zero, loaded) == pytest.approx(0.3)

    def test_speedup_loss_degenerate(self):
        zero = SpeedupCurve(label="0", proc_counts=[1], speedups=[0.0])
        assert speedup_loss(zero, zero) == 0.0


class TestFormatCurves:
    def test_table_shape(self):
        curves = overhead_sweep(fanout_trace(), [1, 4])
        text = format_curves(curves, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("procs")
        assert len(lines) == 2 + 2  # header + 2 proc rows

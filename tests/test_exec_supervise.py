"""Supervision and chaos: the live-mode fault-tolerance contract.

The contract under test (see :mod:`repro.exec.supervise` and
:mod:`repro.exec.chaos`): a supervised run under *any* seeded chaos
policy either recovers to counters bit-identical to the simulator's —
worker restarts replay the current :class:`~repro.exec.plan.CyclePlan`
checkpoint — or raises a typed :class:`~repro.exec.errors
.ExecutorError`.  Never a wedge, never silently-wrong results.  The
zero-chaos supervised run must be indistinguishable from the
unsupervised one.
"""

import asyncio
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (ActorExecutor, ChaosPolicy, ExecutorError,
                        ExecutorWedged, NULL_CHAOS, ProtocolViolation,
                        RestartsExhausted, SessionOverloaded,
                        SessionServer, CONTROL, MatchActorCore,
                        build_plans, exec_timeout_s, match_signature,
                        run, run_supervised_async, run_supervised_mp)
from repro.exec.errors import DEFAULT_TIMEOUT_S, ENV_TIMEOUT
from repro.exec.plan import CycleAccumulator
from repro.mpc import TABLE_5_1, RunConfig, SupervisePolicy
from repro.workloads import rubik_section

from tests.test_simulator_properties import random_traces

OV8 = next(o for o in TABLE_5_1 if o.total_us == 8)

#: Fast-failing supervision for tests: no backoff pauses, and a wedge
#: surfaces in about a second instead of the 300 s production default.
FAST = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=5.0,
                       max_restarts=3, restart_delay_s=0.0)


@pytest.fixture(scope="module")
def rubik():
    return rubik_section()


def sim_signature(trace, config):
    return match_signature(run(trace, config, backend="sim"))


def supervised(trace, config, chaos=None, transport="asyncio"):
    outcome = ActorExecutor(transport=transport, chaos=chaos).submit(
        trace, config).result()
    return match_signature(outcome)


class TestZeroChaosEquivalence:
    def test_supervised_asyncio_bit_identical(self, rubik):
        config = RunConfig(n_procs=4, overheads=OV8, supervise=FAST)
        assert supervised(rubik, config) == sim_signature(rubik, config)

    def test_supervised_mp_bit_identical(self, rubik):
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        assert supervised(rubik, config, transport="process") \
            == sim_signature(rubik, config)

    def test_null_chaos_is_no_chaos(self, rubik):
        assert ChaosPolicy().is_null
        assert NULL_CHAOS.is_null
        config = RunConfig(n_procs=4, overheads=OV8)
        assert supervised(rubik, config, chaos=NULL_CHAOS) \
            == sim_signature(rubik, config)


class TestKillRecovery:
    def test_kill_worker_mid_run_restarts(self, rubik):
        """A worker killed at a known cycle is restarted and the cycle
        replayed from its plan checkpoint, bit-identically."""
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, kills=((first, 1),))
        config = RunConfig(n_procs=4, overheads=OV8, supervise=FAST)
        assert supervised(rubik, config, chaos=chaos) \
            == sim_signature(rubik, config)

    def test_mp_kill_worker_mid_run_restarts(self, rubik):
        """Same contract with real OS processes: the worker takes a
        SIGKILL and a fresh generation replays the cycle."""
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, kills=((first, 0),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        assert supervised(rubik, config, chaos=chaos,
                          transport="process") \
            == sim_signature(rubik, config)

    def test_persistent_kill_exhausts_restarts(self, rubik):
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, persistent_kills=((first, 0),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        with pytest.raises(RestartsExhausted) as info:
            supervised(rubik, config, chaos=chaos)
        assert info.value.cycle == first
        assert info.value.attempts == FAST.max_restarts + 1
        assert isinstance(info.value.last, ExecutorError)

    @pytest.mark.chaos
    def test_mp_persistent_kill_exhausts_restarts(self, rubik):
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, persistent_kills=((first, 1),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        with pytest.raises(RestartsExhausted) as info:
            supervised(rubik, config, chaos=chaos,
                       transport="process")
        assert info.value.attempts == FAST.max_restarts + 1


class TestDropWedgeDetection:
    def test_total_drop_wedges_with_typed_error(self, rubik):
        """Dropping every data message starves quiescence counting;
        the per-cycle deadline converts the hang into ExecutorWedged
        and exhaustion surfaces it — the run never blocks forever."""
        chaos = ChaosPolicy(seed=5, drop_prob=1.0)
        policy = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=0.3,
                                 max_restarts=1, restart_delay_s=0.0)
        config = RunConfig(n_procs=4, overheads=OV8, supervise=policy)
        with pytest.raises(RestartsExhausted) as info:
            supervised(rubik, config, chaos=chaos)
        assert isinstance(info.value.last, ExecutorWedged)


class TestChaosPolicyUnit:
    def test_probability_validation(self):
        for field in ("kill_prob", "drop_prob", "dup_prob",
                      "delay_prob", "stall_prob"):
            with pytest.raises(ValueError):
                ChaosPolicy(**{field: 1.5})
            with pytest.raises(ValueError):
                ChaosPolicy(**{field: -0.1})

    def test_deterministic_draws(self):
        a = ChaosPolicy(seed=9, drop_prob=0.5)
        b = ChaosPolicy(seed=9, drop_prob=0.5)
        decisions = [(a.should_drop(c, 0, i, 0), b.should_drop(c, 0, i, 0))
                     for c in range(10) for i in range(10)]
        assert all(x == y for x, y in decisions)
        assert any(x for x, _ in decisions)
        assert not all(x for x, _ in decisions)

    def test_one_shot_kills_fire_on_first_attempt_only(self):
        chaos = ChaosPolicy(seed=1, kills=((4, 2),))
        assert chaos.should_kill(4, 2, attempt=0)
        assert not chaos.should_kill(4, 2, attempt=1)
        assert not chaos.should_kill(5, 2, attempt=0)

    def test_persistent_kills_fire_every_attempt(self):
        chaos = ChaosPolicy(seed=1, persistent_kills=((4, 2),))
        for attempt in range(5):
            assert chaos.should_kill(4, 2, attempt=attempt)


class TestChecksumGuard:
    """The acts_sum/acts_xor checksum: a duplicated delivery cannot
    silently compensate for a dropped one (the regression behind it:
    drop+duplicate with matching totals but wrong per-actor work)."""

    @staticmethod
    def _run_cycle_serially(plan, config):
        n = config.n_procs
        cores = [MatchActorCore(i, config) for i in range(n)]
        acc = CycleAccumulator(plan, config)
        queue = deque()

        def route(out, processed):
            for dst, msg in out:
                if dst == CONTROL:
                    acc.note(msg)
                else:
                    queue.append((dst, msg))
            if processed:
                acc.note(("processed", processed))

        for i in range(n):
            route(*cores[i].on_cycle(plan.per_actor[i]))
        while queue:
            dst, msg = queue.popleft()
            route(*cores[dst].on_token(msg[1]))
        assert acc.done
        return acc, [core.on_sync() for core in cores]

    def test_clean_stats_pass(self, rubik):
        config = RunConfig(n_procs=4, overheads=OV8)
        plan = build_plans(rubik, config)[0]
        acc, stats = self._run_cycle_serially(plan, config)
        assert all(len(s) == 7 for s in stats)
        cycle_result, fired = acc.finish(stats, wall_s=0.0)
        assert fired == plan.expected_fires

    def test_corrupted_checksum_detected(self, rubik):
        config = RunConfig(n_procs=4, overheads=OV8)
        plan = build_plans(rubik, config)[0]
        acc, stats = self._run_cycle_serially(plan, config)
        # One act-id swapped for another on actor 0: counts and left
        # counts still agree with the plan, only the checksum can tell.
        s = list(stats[0])
        s[5] += 1
        s[6] ^= 3
        stats[0] = tuple(s)
        with pytest.raises(ProtocolViolation, match="checksum"):
            acc.finish(stats, wall_s=0.0)

    def test_miscounted_actor_detected(self, rubik):
        config = RunConfig(n_procs=4, overheads=OV8)
        plan = build_plans(rubik, config)[0]
        acc, stats = self._run_cycle_serially(plan, config)
        s = list(stats[1])
        s[1] += 1  # one activation too many on actor 1
        stats[1] = tuple(s)
        with pytest.raises(ProtocolViolation):
            acc.finish(stats, wall_s=0.0)


class TestTimeoutKnob:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_TIMEOUT, "1.5")
        assert exec_timeout_s() == 1.5
        assert exec_timeout_s(42.0) == 1.5

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_TIMEOUT, raising=False)
        assert exec_timeout_s() == DEFAULT_TIMEOUT_S
        assert exec_timeout_s(7.0) == 7.0

    def test_bad_values_fail_open(self, monkeypatch):
        for bad in ("zero", "-3", "0"):
            monkeypatch.setenv(ENV_TIMEOUT, bad)
            assert exec_timeout_s(7.0) == 7.0


class TestServedDegradation:
    def test_overloaded_session_shed_with_code(self, rubik):
        server = SessionServer(max_sessions=1, max_pending=1)
        server.start()
        try:
            # Force the high-water mark deterministically: the shed
            # check reads the pending gauge before incrementing it.
            server._pending = server.max_pending
            future = server.submit(rubik, RunConfig(n_procs=2))
            with pytest.raises(SessionOverloaded) as info:
                future.result(timeout=30)
            assert info.value.code == "overloaded"
        finally:
            server._pending = 0
            server.stop()

    def test_draining_server_sheds_new_sessions(self, rubik):
        server = SessionServer(max_sessions=2)
        server.start()
        try:
            server._draining = True
            future = server.submit(rubik, RunConfig(n_procs=2))
            with pytest.raises(SessionOverloaded) as info:
                future.result(timeout=30)
            assert info.value.code == "draining"
        finally:
            server._draining = False
            server.stop()

    def test_draining_stop_finishes_inflight_sessions(self, rubik):
        server = SessionServer(max_sessions=2)
        server.start()
        future = server.submit(rubik, RunConfig(n_procs=2,
                                                overheads=OV8))
        server.stop(drain=True)
        result, fires, wall_s = future.result(timeout=30)
        assert len(result.cycles) == len(rubik.cycles)

    def test_health_and_ready_probes(self):
        server = SessionServer(max_sessions=3)
        with server:
            health = server._probe_reply("health")
            ready = server._probe_reply("ready")
        assert health["ok"] and health["status"] == "up"
        assert health["max_sessions"] == 3
        assert ready["ok"] and ready["ready"]

    def test_supervised_session(self, rubik):
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        with SessionServer(max_sessions=2) as server:
            result, fires, wall_s = server.submit(
                rubik, config).result(timeout=60)
        reference = run(rubik, RunConfig(n_procs=2, overheads=OV8),
                        backend="sim")
        assert [tuple(f) for f in fires] == reference.fires


CHAOS_KINDS = ("kill", "dup", "delay", "stall")


@settings(deadline=None, max_examples=25)
@given(trace=random_traces(),
       chaos_seed=st.integers(min_value=0, max_value=2**32 - 1),
       kind=st.sampled_from(CHAOS_KINDS),
       n_procs=st.integers(min_value=2, max_value=4))
def test_supervised_equals_sim_under_random_chaos(trace, chaos_seed,
                                                  kind, n_procs):
    """Property: any seeded chaos policy yields either a bit-identical
    recovery or a typed error — never a silent divergence.  Message
    drops are excluded here (each one costs a full cycle deadline; the
    chaos-marked nightly test and the ``live_recovery`` oracle cover
    them) so the fast tier stays fast."""
    chaos = ChaosPolicy(
        seed=chaos_seed,
        kill_prob=0.05 if kind == "kill" else 0.0,
        dup_prob=0.05 if kind == "dup" else 0.0,
        delay_prob=0.05 if kind == "delay" else 0.0,
        delay_s=0.001,
        stall_prob=0.05 if kind == "stall" else 0.0,
        stall_s=0.005)
    config = RunConfig(n_procs=n_procs, supervise=FAST)
    try:
        live = supervised(trace, config, chaos=chaos)
    except ExecutorError:
        return  # typed and actionable — the conforming failure mode
    assert live == sim_signature(trace, config)


@pytest.mark.chaos
@settings(deadline=None, max_examples=15)
@given(trace=random_traces(),
       chaos_seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_supervised_survives_random_drops(trace, chaos_seed):
    """Nightly tier: the same property with message drops, which cost
    a cycle deadline per wedge and are therefore kept off the PR gate."""
    chaos = ChaosPolicy(seed=chaos_seed, drop_prob=0.02)
    policy = SupervisePolicy(heartbeat_s=0.02, cycle_timeout_s=0.5,
                             max_restarts=3, restart_delay_s=0.0)
    config = RunConfig(n_procs=3, supervise=policy)
    try:
        live = supervised(trace, config, chaos=chaos)
    except ExecutorError:
        return
    assert live == sim_signature(trace, config)


class TestRestartObservability:
    """The supervision layer's story must be *observable*: restart and
    replay spans in a traced run, and ``supervise.*`` counters that
    reconcile with the typed error's own attempt accounting."""

    def _counters(self):
        from repro.obs import get_registry
        registry = get_registry()
        return {name: registry.counter(name).value
                for name in ("supervise.restarts", "supervise.giveups",
                             "supervise.crashes")}

    def test_restart_spans_match_counters_and_generation(self, rubik):
        from repro.obs.trace import LIVE_RESTART
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, kills=((first, 1),))
        config = RunConfig(n_procs=4, overheads=OV8, supervise=FAST,
                           live_trace=True)
        before = self._counters()
        outcome = ActorExecutor(chaos=chaos).submit(
            rubik, config).result()
        after = self._counters()
        restarts = after["supervise.restarts"] \
            - before["supervise.restarts"]
        assert restarts >= 1
        assert after["supervise.giveups"] \
            == before["supervise.giveups"]
        timeline = outcome.live
        restart_spans = [s for s in timeline.spans
                         if s.category == LIVE_RESTART]
        assert len(restart_spans) == restarts
        # The killed cycle committed on a later generation; each
        # restart advances the generation by exactly one.
        assert timeline.committed[first] == restarts
        assert match_signature(outcome) == sim_signature(
            rubik, RunConfig(n_procs=4, overheads=OV8,
                             supervise=FAST))

    def test_exhaustion_counters_reconcile_with_error(self, rubik):
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, persistent_kills=((first, 0),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        before = self._counters()
        with pytest.raises(RestartsExhausted) as info:
            ActorExecutor(chaos=chaos).submit(rubik, config).result()
        after = self._counters()
        # attempts = 1 first try + max_restarts replays; every failed
        # attempt except the last triggered a counted restart, the
        # last became the giveup, and each attempt crashed once.
        assert info.value.attempts == FAST.max_restarts + 1
        assert after["supervise.restarts"] \
            - before["supervise.restarts"] == info.value.attempts - 1
        assert after["supervise.giveups"] \
            - before["supervise.giveups"] == 1
        assert after["supervise.crashes"] \
            - before["supervise.crashes"] == info.value.attempts

    def test_exhaustion_replay_spans_in_flight_dump(
            self, rubik, tmp_path, monkeypatch):
        from repro.obs.trace import LIVE_REPLAY, LIVE_RESTART
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        first = rubik.cycles[0].index
        chaos = ChaosPolicy(seed=3, persistent_kills=((first, 0),))
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST,
                           live_trace=True)
        with pytest.raises(RestartsExhausted):
            ActorExecutor(chaos=chaos).submit(rubik, config).result()
        dump = next(iter(tmp_path.glob("flight-*.jsonl")))
        import json as json_mod
        lines = dump.read_text().splitlines()
        categories = [json_mod.loads(line)["category"]
                      for line in lines[1:]]
        # One restart window per counted restart, one failed-replay
        # window per re-attempt: both reconcile with max_restarts.
        assert categories.count(LIVE_RESTART) == FAST.max_restarts
        assert categories.count(LIVE_REPLAY) == FAST.max_restarts


class TestSupervisedEntryPoints:
    def test_async_entry_point_returns_triple(self, rubik):
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        result, fires, wall_s = asyncio.run(
            run_supervised_async(rubik, config))
        assert len(result.cycles) == len(rubik.cycles)
        assert wall_s > 0.0

    def test_mp_entry_point_returns_triple(self, rubik):
        config = RunConfig(n_procs=2, overheads=OV8, supervise=FAST)
        result, fires, wall_s = run_supervised_mp(rubik, config)
        assert len(result.cycles) == len(rubik.cycles)
        assert wall_s > 0.0

"""Tests for the footnote-6 deletion-search cost model."""

import pytest

from repro.mpc import (CostModel, compute_search_costs, simulate,
                       simulate_base)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation


def act(i, node, tag, side="left", vals=()):
    return TraceActivation(act_id=i, parent_id=None, node_id=node,
                           kind="join", side=side, tag=tag,
                           key=BucketKey(node, tuple(vals)),
                           successors=())


def section(*tag_lists):
    """One bucket per cycle-list; all activations at node 1."""
    cycles = []
    for index, tags in enumerate(tag_lists, start=1):
        cycle = CycleTrace(index=index)
        for i, tag in enumerate(tags, start=1):
            cycle.add(act(i, node=1, tag=tag))
        cycles.append(cycle)
    return SectionTrace(name="s", cycles=cycles)


class TestComputeSearchCosts:
    def test_disabled_by_default(self):
        trace = section(["+", "-"])
        assert compute_search_costs(trace, CostModel()) == {}

    def test_delete_scans_current_depth(self):
        trace = section(["+", "+", "+", "-"])
        costs = CostModel(delete_search_us=2.0)
        extra = compute_search_costs(trace, costs)
        # The delete sees 3 entries: 3 * 2us.
        assert extra == {1: {4: 6.0}}

    def test_alternating_stream_stays_cheap(self):
        trace = section(["+", "-", "+", "-"])
        costs = CostModel(delete_search_us=2.0)
        extra = compute_search_costs(trace, costs)
        assert extra == {1: {2: 2.0, 4: 2.0}}

    def test_depth_persists_across_cycles(self):
        """Rete memory lives across MRA cycles: adds in cycle 1 make a
        delete in cycle 2 expensive."""
        trace = section(["+", "+"], ["-"])
        costs = CostModel(delete_search_us=1.0)
        extra = compute_search_costs(trace, costs)
        assert extra == {2: {1: 2.0}}

    def test_delete_from_empty_bucket_free(self):
        trace = section(["-"])
        costs = CostModel(delete_search_us=5.0)
        assert compute_search_costs(trace, costs) == {}

    def test_distinct_buckets_tracked_separately(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1, node=1, tag="+", vals=(1,)))
        cycle.add(act(2, node=1, tag="+", vals=(2,)))
        cycle.add(act(3, node=1, tag="-", vals=(1,)))
        trace = SectionTrace(name="s", cycles=[cycle])
        extra = compute_search_costs(trace, CostModel(delete_search_us=1))
        assert extra == {1: {3: 1.0}}


class TestSimulationWithSearchCosts:
    def test_base_time_includes_search(self):
        trace = section(["+", "+", "+", "-"])
        plain = simulate_base(trace)
        priced = simulate_base(trace,
                               costs=CostModel(delete_search_us=2.0))
        assert priced.total_us == pytest.approx(plain.total_us + 6.0)

    def test_search_on_hot_bucket_hurts_parallel_run_more(self):
        """Search costs land on the serial hot bucket, so the parallel
        makespan absorbs them in full while T1 merely grows — the
        speedup falls."""
        # Hot bucket: 20 adds then 10 deletes; plus independent filler
        # work that parallelizes perfectly.
        cycle = CycleTrace(index=1)
        i = 1
        for _ in range(20):
            cycle.add(act(i, node=1, tag="+"))
            i += 1
        for _ in range(10):
            cycle.add(act(i, node=1, tag="-"))
            i += 1
        for k in range(200):
            cycle.add(act(i, node=100 + k, tag="+", side="right"))
            i += 1
        trace = SectionTrace(name="s", cycles=[cycle])

        def speedup_at(search):
            costs = CostModel(delete_search_us=search)
            base = simulate_base(trace, costs=costs)
            run = simulate(trace, n_procs=16, costs=costs)
            return base.total_us / run.total_us

        assert speedup_at(4.0) < speedup_at(0.0)

    def test_scaled_preserves_search_cost(self):
        costs = CostModel(delete_search_us=3.0).scaled(2.5)
        assert costs.delete_search_us == 3.0

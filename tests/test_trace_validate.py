"""Tests for trace structural validation."""

import pytest

from repro.rete.hashing import BucketKey
from repro.trace import (CycleTrace, SectionTrace, TraceActivation,
                         TraceValidationError, validate_cycle,
                         validate_trace)


def act(act_id, node=1, side="left", tag="+", parent=None, succ=(),
        kind="join", key_node=None):
    return TraceActivation(
        act_id=act_id, parent_id=parent, node_id=node, kind=kind,
        side=side, tag=tag, key=BucketKey(key_node or node, ()),
        successors=tuple(succ))


def single(activation_list, index=1):
    cycle = CycleTrace(index=index)
    for a in activation_list:
        cycle.add(a)
    return cycle


class TestValidateCycle:
    def test_valid_forest(self):
        cycle = single([
            act(1, side="right", succ=(2,)),
            act(2, node=2, parent=1),
        ])
        assert validate_cycle(cycle) == []

    def test_missing_parent(self):
        cycle = single([act(2, parent=9)])
        assert any("parent 9 missing" in p for p in validate_cycle(cycle))

    def test_parent_id_not_smaller(self):
        cycle = single([
            act(1, parent=2),
            act(2, succ=(1,)),
        ])
        assert any("not smaller" in p for p in validate_cycle(cycle))

    def test_dangling_successor(self):
        cycle = single([act(1, succ=(7,))])
        assert any("successor 7 missing" in p
                   for p in validate_cycle(cycle))

    def test_successor_claims_other_parent(self):
        cycle = single([
            act(1, succ=(3,)),
            act(2, succ=(3,)),
            act(3, parent=2),
        ])
        problems = validate_cycle(cycle)
        assert any("claims parent" in p or "also claimed" in p
                   for p in problems)

    def test_child_not_listed_in_parent(self):
        cycle = single([
            act(1),
            act(2, parent=1),
        ])
        assert any("not listed" in p for p in validate_cycle(cycle))

    def test_terminal_with_successors(self):
        cycle = single([
            act(1, kind="terminal", succ=(2,)),
            act(2, parent=1),
        ])
        assert any("terminal with successors" in p
                   for p in validate_cycle(cycle))

    def test_generated_right_activation_flagged(self):
        # Tokens generated at two-input nodes only produce left
        # activations (paper Section 3.2).
        cycle = single([
            act(1, succ=(2,)),
            act(2, parent=1, side="right"),
        ])
        assert any("right side" in p for p in validate_cycle(cycle))

    def test_key_node_mismatch(self):
        cycle = single([act(1, node=1, key_node=5)])
        assert any("bucket key node" in p for p in validate_cycle(cycle))

    def test_bad_tag(self):
        bad = act(1)
        bad.tag = "*"
        cycle = single([bad])
        assert any("bad tag" in p for p in validate_cycle(cycle))

    def test_duplicate_act_id_rejected_at_add(self):
        cycle = CycleTrace(index=1)
        cycle.add(act(1))
        with pytest.raises(ValueError):
            cycle.add(act(1))


class TestValidateTrace:
    def test_raises_by_default(self):
        trace = SectionTrace(name="bad",
                             cycles=[single([act(2, parent=9)])])
        with pytest.raises(TraceValidationError):
            validate_trace(trace)

    def test_collect_mode(self):
        trace = SectionTrace(name="bad",
                             cycles=[single([act(2, parent=9)])])
        problems = validate_trace(trace, raise_on_error=False)
        assert len(problems) == 1

    def test_duplicate_cycle_index(self):
        trace = SectionTrace(name="dup", cycles=[
            single([act(1)], index=3),
            single([act(1)], index=3),
        ])
        problems = validate_trace(trace, raise_on_error=False)
        assert any("duplicate cycle index" in p for p in problems)

    def test_empty_trace_is_valid(self):
        assert validate_trace(SectionTrace(name="empty")) == []

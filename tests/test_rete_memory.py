"""Unit tests for the global hashed memories."""

from repro.ops5.wme import WME
from repro.rete import BucketKey, HashedMemories, make_unit_token


def tok(i):
    return make_unit_token(WME(i, "a", {}), {})


K1 = BucketKey(1, ("v",))
K2 = BucketKey(2, ("v",))


class TestLeftTable:
    def test_add_and_lookup(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        assert m.left_bucket(K1) == [tok(1)]

    def test_buckets_are_independent(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        assert m.left_bucket(K2) == []

    def test_remove_present(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        assert m.remove_left(K1, tok(1))
        assert m.left_bucket(K1) == []

    def test_remove_absent_returns_false(self):
        m = HashedMemories()
        assert not m.remove_left(K1, tok(1))

    def test_remove_only_one_copy(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        m.add_left(K1, tok(1))
        m.remove_left(K1, tok(1))
        assert len(m.left_bucket(K1)) == 1

    def test_empty_bucket_is_garbage_collected(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        m.remove_left(K1, tok(1))
        assert list(m.left_keys()) == []


class TestRightTable:
    def test_add_remove_roundtrip(self):
        m = HashedMemories()
        w = WME(1, "a", {})
        m.add_right(K1, w)
        assert m.right_bucket(K1) == [w]
        assert m.remove_right(K1, w)
        assert m.right_bucket(K1) == []

    def test_remove_absent_returns_false(self):
        m = HashedMemories()
        assert not m.remove_right(K1, WME(1, "a", {}))

    def test_left_and_right_tables_are_disjoint(self):
        m = HashedMemories()
        m.add_right(K1, WME(1, "a", {}))
        assert m.left_bucket(K1) == []


class TestAccounting:
    def test_counts(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        m.add_left(K2, tok(2))
        m.add_right(K1, WME(3, "a", {}))
        assert m.counts() == (2, 1)

    def test_is_empty(self):
        m = HashedMemories()
        assert m.is_empty()
        m.add_left(K1, tok(1))
        assert not m.is_empty()
        m.remove_left(K1, tok(1))
        assert m.is_empty()

    def test_clear(self):
        m = HashedMemories()
        m.add_left(K1, tok(1))
        m.add_right(K1, WME(1, "a", {}))
        m.clear()
        assert m.is_empty()

"""Tests for the Section 5.2 trace diagnostics."""

import pytest

from repro.analysis import (diagnose, find_bottleneck_generators,
                            find_cross_products, find_multiple_modify,
                            find_small_cycles)
from repro.rete.hashing import BucketKey
from repro.trace import CycleTrace, SectionTrace, TraceActivation
from repro.workloads import rubik_section, tourney_section, weaver_section
from repro.workloads.tourney import CP_NODE
from repro.workloads.weaver import HOT_NODE


def act(i, node, side="left", tag="+", parent=None, succ=(), vals=()):
    return TraceActivation(act_id=i, parent_id=parent, node_id=node,
                           kind="join", side=side, tag=tag,
                           key=BucketKey(node, tuple(vals)),
                           successors=tuple(succ))


def single_cycle(acts):
    cycle = CycleTrace(index=1)
    for a in acts:
        cycle.add(a)
    return SectionTrace(name="t", cycles=[cycle])


class TestSmallCycles:
    def test_small_cycle_flagged(self):
        trace = single_cycle([act(i, node=i) for i in range(1, 21)])
        [finding] = find_small_cycles(trace)
        assert finding.kind == "small-cycle"
        assert "20 tokens" in finding.detail

    def test_large_cycle_not_flagged(self):
        trace = single_cycle([act(i, node=i) for i in range(1, 150)])
        assert find_small_cycles(trace) == []

    def test_empty_cycle_not_flagged(self):
        trace = SectionTrace(name="t", cycles=[CycleTrace(index=1)])
        assert find_small_cycles(trace) == []


class TestBottleneckGenerators:
    def test_concentrated_generation_flagged(self):
        acts = [act(1, node=5, succ=tuple(range(10, 40)))]
        acts += [act(i, node=9, parent=1) for i in range(10, 40)]
        acts += [act(i, node=i) for i in range(50, 70)]  # other work
        trace = single_cycle(acts)
        findings = find_bottleneck_generators(trace)
        assert any(f.node_id == 5 for f in findings)

    def test_even_generation_not_flagged(self):
        # Many generators each making one token.
        acts = []
        i = 1
        for k in range(20):
            acts.append(act(i, node=k + 1, succ=(i + 1,)))
            acts.append(act(i + 1, node=100 + k, parent=i))
            i += 2
        assert find_bottleneck_generators(single_cycle(acts)) == []


class TestCrossProducts:
    def test_hot_valueless_bucket_flagged_with_no_hash_note(self):
        trace = single_cycle([act(i, node=7) for i in range(1, 61)])
        [finding] = find_cross_products(trace)
        assert finding.node_id == 7
        assert "no hashing" in finding.detail or \
            "no variable" in finding.detail

    def test_hot_valued_bucket_flagged_without_note(self):
        trace = single_cycle([act(i, node=7, vals=("k",))
                              for i in range(1, 61)])
        [finding] = find_cross_products(trace)
        assert "no variable" not in finding.detail

    def test_spread_buckets_not_flagged(self):
        trace = single_cycle([act(i, node=7, vals=(i,))
                              for i in range(1, 61)])
        assert find_cross_products(trace) == []


class TestMultipleModify:
    def test_alternating_stream_flagged(self):
        tags = ["+", "-"] * 15
        trace = single_cycle([act(i + 1, node=3, tag=t)
                              for i, t in enumerate(tags)])
        [finding] = find_multiple_modify(trace)
        assert finding.kind == "multiple-modify"
        assert finding.node_id == 3

    def test_adds_only_not_flagged(self):
        trace = single_cycle([act(i, node=3) for i in range(1, 40)])
        assert find_multiple_modify(trace) == []

    def test_block_of_deletes_without_alternation_not_flagged(self):
        tags = ["+"] * 15 + ["-"] * 15
        trace = single_cycle([act(i + 1, node=3, tag=t)
                              for i, t in enumerate(tags)])
        # Only one alternation: a bulk retract, not a modify storm.
        assert find_multiple_modify(trace) == []


class TestOnPaperSections:
    def test_tourney_cp_node_detected(self):
        findings = find_cross_products(tourney_section())
        assert any(f.node_id == CP_NODE and "no variable" in f.detail
                   for f in findings)

    def test_tourney_multiple_modify_detected(self):
        findings = find_multiple_modify(tourney_section())
        assert any(f.node_id == CP_NODE for f in findings)

    def test_weaver_bottleneck_detected(self):
        findings = find_bottleneck_generators(weaver_section())
        assert any(f.node_id == HOT_NODE for f in findings)
        [hot] = [f for f in findings if f.node_id == HOT_NODE]
        assert "3 activations generate 120" in hot.detail

    def test_weaver_small_cycles_detected(self):
        findings = find_small_cycles(weaver_section())
        assert len(findings) >= 3

    def test_rubik_has_no_bottleneck_generator(self):
        assert find_bottleneck_generators(rubik_section()) == []

    def test_diagnose_sorts_and_merges(self):
        findings = diagnose(tourney_section())
        keys = [(f.cycle_index, f.kind, f.node_id) for f in findings]
        assert keys == sorted(keys)
        kinds = {f.kind for f in findings}
        assert {"small-cycle", "cross-product",
                "multiple-modify"} <= kinds

    def test_finding_str_is_readable(self):
        [f] = [x for x in diagnose(weaver_section())
               if x.kind == "bottleneck-generator"]
        text = str(f)
        assert "bottleneck-generator" in text
        assert "unshare" in text

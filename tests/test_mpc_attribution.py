"""Tests of the idle-time attribution pass (paper Section 5 limiters).

The core invariant: every idle microsecond of every processor is
assigned to exactly one category, and the categories sum — exactly,
with the paper's 0.5 µs-granular cost models — to the measured idle
time ``n_procs * makespan - sum(proc_busy)``.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (FailStop, FaultModel, RunConfig, StallWindow,
                       TimelineRecorder, attribute_cycle,
                       attribute_timeline, critical_path,
                       format_attribution, simulate_config)
from repro.mpc.attribution import IDLE_CATEGORIES
from repro.mpc.costmodel import TABLE_5_1
from repro.workloads import tourney_section, weaver_section

from tests.test_simulator_properties import random_traces

OV16 = next(o for o in TABLE_5_1 if o.total_us == 16)


def attributed(trace, n_procs, **kwargs):
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(n_procs=n_procs,
                                              recorder=recorder,
                                              **kwargs))
    return result, recorder.timeline, attribute_timeline(recorder.timeline)


class TestSums:
    @pytest.mark.parametrize("n_procs", [1, 4, 16])
    def test_categories_partition_measured_idle(self, n_procs):
        result, timeline, section = attributed(weaver_section(), n_procs,
                                               overheads=OV16)
        for attribution, cycle_result in zip(section.cycles,
                                             result.cycles):
            attribution.check_sums()
            measured = n_procs * cycle_result.makespan_us \
                - sum(cycle_result.proc_busy_us)
            assert attribution.idle_us == pytest.approx(measured)

    def test_sums_under_faults(self):
        faults = FaultModel(seed=9, loss_prob=0.2, dup_prob=0.1)
        result, _, section = attributed(weaver_section(), 8,
                                        overheads=OV16, faults=faults)
        for attribution, cycle_result in zip(section.cycles,
                                             result.cycles):
            attribution.check_sums()

    def test_shares_sum_to_one(self):
        _, _, section = attributed(weaver_section(), 8, overheads=OV16)
        assert sum(section.idle_shares().values()) == pytest.approx(1.0)
        assert section.dominant_category() in IDLE_CATEGORIES

    def test_check_sums_detects_corruption(self):
        _, _, section = attributed(weaver_section(), 4, overheads=OV16)
        attribution = section.cycles[0]
        attribution.idle_by_category["chain_wait"] += 123.0
        with pytest.raises(ValueError):
            attribution.check_sums()


class TestCategoryBehavior:
    def test_single_proc_idles_only_on_floor(self):
        # One processor never waits on peers: its only idle time is the
        # tail while control drains instantiation receipts — and the
        # broadcast floor is busy time (recv) for it, not idle.
        _, _, section = attributed(weaver_section(), 1, overheads=OV16)
        by_category = section.idle_by_category()
        assert by_category["chain_wait"] == 0.0
        assert by_category["protocol"] == 0.0

    def test_protocol_category_appears_with_stalls(self):
        faults = FaultModel(seed=0, stalls=(
            StallWindow(proc=0, start_us=0.0, end_us=2_000.0),))
        _, _, section = attributed(weaver_section(), 4,
                                   overheads=OV16, faults=faults)
        assert section.idle_by_category()["protocol"] > 0.0
        for attribution in section.cycles:
            attribution.check_sums()

    def test_failstop_counts_as_protocol(self):
        faults = FaultModel(seed=0, failures=(
            FailStop(proc=1, cycle=1, recovery_us=5_000.0),))
        _, _, section = attributed(weaver_section(), 4,
                                   overheads=OV16, faults=faults)
        assert section.idle_by_category()["protocol"] > 0.0

    def test_fault_free_run_has_zero_protocol_idle(self):
        _, _, section = attributed(weaver_section(), 8, overheads=OV16)
        assert section.idle_by_category()["protocol"] == 0.0

    def test_imbalance_dominates_hot_bucket_section(self):
        # Tourney funnels everything into one bucket: the other
        # processors finish early and wait for the owner.
        _, _, section = attributed(tourney_section(), 8,
                                   overheads=OV16)
        shares = section.idle_shares()
        assert shares["imbalance"] + shares["chain_wait"] > 0.5


class TestCriticalPath:
    def test_path_is_causal_chain(self):
        _, timeline, section = attributed(weaver_section(), 8,
                                          overheads=OV16)
        for cycle in timeline.cycles:
            path = critical_path(cycle)
            assert path, "non-empty cycle must have a critical path"
            for parent, child in zip(path, path[1:]):
                assert child.parent_id == parent.act_id
                assert child.start_us >= parent.start_us
            by_end = max(e.end_us for e in cycle.envelopes)
            assert path[-1].end_us == by_end

    def test_attributions_carry_path(self):
        _, _, section = attributed(weaver_section(), 8, overheads=OV16)
        for attribution in section.cycles:
            assert attribution.critical_path


class TestReport:
    def test_format_attribution_mentions_all_categories(self):
        _, _, section = attributed(weaver_section(), 8, overheads=OV16)
        text = format_attribution(section, title="weaver@8")
        assert "weaver@8" in text
        assert "idle time:" in text
        assert "busy mix:" in text
        assert "critical path" in text

    def test_to_dict_is_json_ready(self):
        import json
        _, _, section = attributed(weaver_section(), 8, overheads=OV16)
        payload = json.loads(json.dumps(section.to_dict()))
        assert payload["trace"] == "weaver"
        assert set(payload["idle_by_category_us"]) == set(IDLE_CATEGORIES)
        assert payload["longest_cycle"]["critical_path"]


@given(trace=random_traces(),
       n_procs=st.integers(min_value=1, max_value=12))
def test_property_categories_always_partition(trace, n_procs):
    recorder = TimelineRecorder()
    result = simulate_config(trace, RunConfig(
        n_procs=n_procs, overheads=OV16, recorder=recorder))
    section = attribute_timeline(recorder.timeline)
    for attribution, cycle_result in zip(section.cycles, result.cycles):
        attribution.check_sums()
        measured = n_procs * cycle_result.makespan_us \
            - sum(cycle_result.proc_busy_us)
        assert attribution.idle_us == pytest.approx(measured)
        # no category goes negative
        assert all(v >= 0.0
                   for v in attribution.idle_by_category.values())


@given(trace=random_traces(),
       loss=st.sampled_from([0.0, 0.2]),
       n_procs=st.integers(min_value=2, max_value=8))
def test_property_sums_hold_under_faults(trace, loss, n_procs):
    faults = FaultModel(seed=2, loss_prob=loss, dup_prob=0.1)
    recorder = TimelineRecorder()
    simulate_config(trace, RunConfig(n_procs=n_procs, overheads=OV16,
                                     faults=faults, recorder=recorder))
    section = attribute_timeline(recorder.timeline)
    for attribution in section.cycles:
        attribution.check_sums()

"""Smoke tests: every example script must run clean from a fresh
interpreter (they are the documented entry points)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "every box is painted" in result.stdout
    assert "speedup" in result.stdout


def test_blocks_world():
    result = run_example("blocks_world.py", "6")
    assert result.returncode == 0, result.stderr
    assert "6-block tower flattened" in result.stdout
    assert "matchers agree" in result.stdout


def test_transformations():
    result = run_example("transformations.py")
    assert result.returncode == 0, result.stderr
    assert "unsharing" in result.stdout
    assert "copy-and-constraint" in result.stdout


def test_load_balancing():
    result = run_example("load_balancing.py")
    assert result.returncode == 0, result.stderr
    assert "greedy" in result.stdout
    assert "P(perfectly even)" in result.stdout


def test_diagnose_and_fix():
    result = run_example("diagnose_and_fix.py", "weaver", "16")
    assert result.returncode == 0, result.stderr
    assert "unshare node" in result.stdout
    assert "improvement" in result.stdout


def test_architectures():
    result = run_example("architectures.py", "weaver")
    assert result.returncode == 0, result.stderr
    assert "shared bus" in result.stdout
    assert "master copy" in result.stdout


def test_fault_tolerance():
    result = run_example("fault_tolerance.py")
    assert result.returncode == 0, result.stderr
    assert "bit-identical: yes" in result.stdout
    assert "retransmits" in result.stdout
    assert "recovering" in result.stdout


def test_chaos_recovery():
    result = run_example("chaos_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "bit-identical to the simulator" in result.stdout
    assert "replayed from its plan checkpoint" in result.stdout
    assert "typed give-up after 4 attempts" in result.stdout


def test_architectures_rejects_unknown_section():
    result = run_example("architectures.py", "nosuch")
    assert result.returncode != 0
    assert "unknown section" in result.stderr


@pytest.mark.parametrize("figure", ["table5_1", "table5_2", "fig5_5"])
def test_paper_figures_single(figure):
    result = run_example("paper_figures.py", figure)
    assert result.returncode == 0, result.stderr
    assert figure.replace("fig", "Figure ").replace("table", "Table ") \
        .replace("5_", "5-") in result.stdout


def test_paper_figures_rejects_unknown():
    result = run_example("paper_figures.py", "fig9_9")
    assert result.returncode != 0
    assert "unknown figure" in result.stderr


def test_profile_section():
    result = run_example("profile_section.py")
    assert result.returncode == 0, result.stderr
    assert "bit-identical: yes" in result.stdout
    assert "reconcile exactly" in result.stdout
    assert "idle time:" in result.stdout
    assert "dominant limiter" in result.stdout
    assert "all invariants hold" in result.stdout

"""Tests for the Section 3.1 memory-footprint model and partitioning."""

import pytest

from repro.ops5 import parse_production
from repro.rete import (INLINE_BYTES_PER_NODE, STRUCT_BYTES_PER_NODE,
                        build_network, inline_bytes, partition_nodes,
                        partitions_needed, struct_bytes)


def synthetic_ruleset(n_productions, ces_per_production=3):
    """n distinct productions, each with its own join chain."""
    rules = []
    for i in range(n_productions):
        ces = " ".join(f"(c{i}x{j} ^v <x>)"
                       for j in range(ces_per_production))
        rules.append(parse_production(f"(p r{i} {ces} --> (remove 1))"))
    return rules


class TestSizeEstimates:
    def test_paper_scale_inline_footprint(self):
        """~1000 productions land in the paper's 1-2 MB band under
        in-line expansion."""
        net = build_network(synthetic_ruleset(1000))
        size = inline_bytes(net)
        assert 1_000_000 <= size <= 2_000_000

    def test_struct_encoding_is_drastically_smaller(self):
        net = build_network(synthetic_ruleset(1000))
        assert struct_bytes(net) < inline_bytes(net) / 20

    def test_struct_uses_14_byte_nodes(self):
        # Direct arithmetic: total = 14 * nodes + interpreter.
        from repro.rete.footprint import STRUCT_INTERPRETER_BYTES
        net = build_network(synthetic_ruleset(10))
        assert struct_bytes(net) == \
            14 * net.node_count() + STRUCT_INTERPRETER_BYTES


class TestPartitionsNeeded:
    def test_small_program_needs_one_partition(self):
        net = build_network(synthetic_ruleset(5))
        assert partitions_needed(net, 20_000, "struct") == 1

    def test_paper_scale_fits_20kb_with_struct_encoding(self):
        """The point of the 14-byte encoding: ~1000 productions fit a
        20 KB local memory in very few partitions."""
        net = build_network(synthetic_ruleset(1000))
        assert partitions_needed(net, 20_000, "struct") <= 3

    def test_inline_needs_many_more_partitions(self):
        net = build_network(synthetic_ruleset(1000))
        inline = partitions_needed(net, 20_000, "inline")
        struct = partitions_needed(net, 20_000, "struct")
        assert inline > 20 * struct

    def test_empty_network(self):
        net = build_network([])
        assert partitions_needed(net, 20_000) == 1

    def test_rejects_hopeless_budget(self):
        net = build_network(synthetic_ruleset(5))
        with pytest.raises(ValueError):
            partitions_needed(net, 10, "struct")

    def test_rejects_unknown_encoding(self):
        net = build_network(synthetic_ruleset(2))
        with pytest.raises(ValueError):
            partitions_needed(net, 20_000, "quantum")

    def test_rejects_nonpositive_memory(self):
        net = build_network(synthetic_ruleset(2))
        with pytest.raises(ValueError):
            partitions_needed(net, 0)


class TestPartitioning:
    def test_every_node_assigned(self):
        net = build_network(synthetic_ruleset(20))
        result = partition_nodes(net, 4)
        assert set(result.assignment) == \
            {n.node_id for n in net.two_input_nodes()}

    def test_production_nodes_spread(self):
        """The contention rule: a production's nodes go to different
        partitions when enough partitions exist."""
        rules = synthetic_ruleset(10, ces_per_production=4)
        net = build_network(rules)
        result = partition_nodes(net, 4)
        assert result.conflicted_productions == []
        for name, node_ids in net.production_nodes.items():
            partitions = [result.assignment[n] for n in node_ids]
            assert len(set(partitions)) == len(partitions), name

    def test_conflict_reported_when_partitions_too_few(self):
        rules = synthetic_ruleset(3, ces_per_production=5)  # 4 joins
        net = build_network(rules)
        result = partition_nodes(net, 2)
        assert len(result.conflicted_productions) == 3

    def test_load_balanced(self):
        net = build_network(synthetic_ruleset(40))
        result = partition_nodes(net, 8)
        sizes = result.partition_sizes()
        assert max(sizes) - min(sizes) <= 2

    def test_shared_nodes_keep_first_assignment(self):
        shared = [parse_production(
            "(p a (x ^v <i>) (y ^w <i>) --> (remove 1))"),
            parse_production(
            "(p b (x ^v <i>) (y ^w <i>) --> (remove 1))")]
        net = build_network(shared)
        result = partition_nodes(net, 4)
        # One shared join node: exactly one assignment entry.
        assert len(result.assignment) == 1

    def test_rejects_zero_partitions(self):
        net = build_network(synthetic_ruleset(2))
        with pytest.raises(ValueError):
            partition_nodes(net, 0)

"""Property-based equivalence: Rete vs the naive matcher.

The naive matcher recomputes every instantiation from scratch, so it is
trivially correct.  These tests drive randomly generated rule sets and
random add/remove churn through both matchers and require identical
conflict sets at every step — the strongest correctness statement we can
make about the incremental engine.
"""

from typing import List

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ops5 import NaiveMatcher, parse_production
from repro.ops5.wme import WME
from repro.rete import ReteNetwork

# Small alphabets keep collision (join hits, negation interplay) likely.
CLASSES = ["a", "b", "c"]
ATTRS = ["p", "q"]
VALUES = [1, 2, "x"]


wme_payloads = st.builds(
    dict,
    p=st.sampled_from(VALUES),
    q=st.sampled_from(VALUES),
)

# A catalogue of structurally diverse productions: joins, constants,
# negation, relational tests, cross products.
PRODUCTION_SOURCES = [
    "(p join2 (a ^p <x>) (b ^p <x>) --> (remove 1))",
    "(p join2q (a ^q <x>) (b ^q <x>) --> (remove 1))",
    "(p const (a ^p 1) --> (remove 1))",
    "(p cross (a) (b) --> (remove 1))",
    "(p chain3 (a ^p <x>) (b ^p <x> ^q <y>) (c ^q <y>) --> (remove 1))",
    "(p neg (a) -(c) --> (remove 1))",
    "(p negjoin (a ^p <x>) -(b ^p <x>) --> (remove 1))",
    "(p negmid (a ^p <x>) -(c ^p <x>) (b) --> (remove 1))",
    "(p rel (a ^p <x>) (b ^p > <x>) --> (remove 1))",
    "(p intra (a ^p <x> ^q <x>) --> (remove 1))",
    "(p selfjoin (a ^p <x>) (a ^q <x>) --> (remove 1))",
    "(p disj (a ^p << 1 x >>) --> (remove 1))",
    "(p negdisj (a) -(b ^q << 2 x >>) --> (remove 1))",
]


def conflict_signature(matcher):
    """Canonical form of a conflict set for comparison."""
    return sorted((inst.production.name,
                   tuple(w.wme_id for w in inst.wmes))
                  for inst in matcher.conflict_set())


@st.composite
def churn_scripts(draw):
    """A random sequence of adds and removes over a shared wme pool."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    live: List[int] = []
    next_id = 1
    for _ in range(n_ops):
        if live and draw(st.booleans()) and draw(st.booleans()):
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("remove", victim))
        else:
            cls = draw(st.sampled_from(CLASSES))
            payload = draw(wme_payloads)
            ops.append(("add", next_id, cls, payload))
            live.append(next_id)
            next_id += 1
    return ops


@st.composite
def rule_subsets(draw):
    indices = draw(st.lists(
        st.integers(min_value=0, max_value=len(PRODUCTION_SOURCES) - 1),
        min_size=1, max_size=5, unique=True))
    return [PRODUCTION_SOURCES[i] for i in indices]


@given(rules=rule_subsets(), script=churn_scripts())
def test_rete_equals_naive_under_churn(rules, script):
    rete = ReteNetwork()
    naive = NaiveMatcher()
    for source in rules:
        production = parse_production(source)
        rete.add_production(production)
        naive.add_production(production)

    wmes = {}
    timestamp = 0
    for op in script:
        if op[0] == "add":
            _, wid, cls, payload = op
            timestamp += 1
            wme = WME(wid, cls, payload, timestamp=timestamp)
            wmes[wid] = wme
            rete.add_wme(wme)
            naive.add_wme(wme)
        else:
            wme = wmes.pop(op[1])
            rete.remove_wme(wme)
            naive.remove_wme(wme)
        assert conflict_signature(rete) == conflict_signature(naive)


@given(rules=rule_subsets(), script=churn_scripts())
def test_memories_empty_after_removing_everything(rules, script):
    """State-saving invariant: removing all wmes drains all memory."""
    rete = ReteNetwork()
    for source in rules:
        rete.add_production(parse_production(source))
    live = {}
    timestamp = 0
    for op in script:
        if op[0] == "add":
            _, wid, cls, payload = op
            timestamp += 1
            wme = WME(wid, cls, payload, timestamp=timestamp)
            live[wid] = wme
            rete.add_wme(wme)
        else:
            rete.remove_wme(live.pop(op[1]))
    for wme in list(live.values()):
        rete.remove_wme(wme)
    assert rete.memories.is_empty()
    assert rete.conflict_set() == []


@given(rules=rule_subsets(), script=churn_scripts())
def test_unshared_network_equals_shared(rules, script):
    """Unsharing (Fig 5-3) must not change match semantics."""
    shared = ReteNetwork(share=True)
    unshared = ReteNetwork(share=False)
    for source in rules:
        production = parse_production(source)
        shared.add_production(production)
        unshared.add_production(production)
    live = {}
    timestamp = 0
    for op in script:
        if op[0] == "add":
            _, wid, cls, payload = op
            timestamp += 1
            wme = WME(wid, cls, payload, timestamp=timestamp)
            live[wid] = wme
            shared.add_wme(wme)
            unshared.add_wme(wme)
        else:
            wme = live.pop(op[1])
            shared.remove_wme(wme)
            unshared.remove_wme(wme)
        assert conflict_signature(shared) == conflict_signature(unshared)

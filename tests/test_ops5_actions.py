"""Unit tests for RHS action execution (error paths and formatting)."""

import pytest

from repro.ops5 import (ExecutionError, Instantiation, Interpreter,
                        parse_production, parse_program, run_program)
from repro.ops5.actions import execute
from repro.ops5.wme import WorkingMemory


def fire(source, wmes):
    """Load one production + wmes, fire once, return (interp, record)."""
    interp = Interpreter()
    interp.add_production(parse_production(source))
    for cls, attrs in wmes:
        interp.add_wme(cls, attrs)
    record = interp.step()
    return interp, record


class TestMake:
    def test_creates_wme_with_resolved_values(self):
        interp, record = fire(
            "(p r (src ^v <x>) --> (make dst ^a <x> ^b lit))",
            [("src", {"v": 7})])
        [dst] = [w for w in interp.wm if w.cls == "dst"]
        assert dst.get("a") == 7
        assert dst.get("b") == "lit"

    def test_delta_contains_add(self):
        _, record = fire("(p r (a) --> (make b))", [("a", {})])
        assert ("+", "b") in [(t, w.cls) for t, w in record.deltas]


class TestRemoveModify:
    def test_remove_deletes(self):
        interp, record = fire("(p r (a) --> (remove 1))", [("a", {})])
        assert len(interp.wm) == 0

    def test_modify_keeps_untouched_attrs(self):
        interp, _ = fire("(p r (a ^x 1 ^y 2) --> (modify 1 ^x 9))",
                         [("a", {"x": 1, "y": 2})])
        [wme] = list(interp.wm)
        assert wme.get("x") == 9 and wme.get("y") == 2

    def test_modify_after_remove_same_wme_raises(self):
        interp = Interpreter()
        interp.add_production(parse_production(
            "(p r (a ^v <x>) (a ^v <x>) --> (remove 1) (modify 2 ^v 9))"))
        interp.add_wme("a", {"v": 1})
        with pytest.raises(ExecutionError):
            interp.step()

    def test_modify_emits_delete_then_add(self):
        _, record = fire("(p r (a ^x 1) --> (modify 1 ^x 2))",
                         [("a", {"x": 1})])
        tags = [t for t, _ in record.deltas]
        assert tags == ["-", "+"]


class TestWrite:
    def test_values_space_separated(self):
        result = run_program(parse_program("""
            (startup (make m ^a hello ^b 42))
            (p r (m ^a <a> ^b <b>) --> (write <a> <b>) (remove 1))
        """))
        assert result.output == "hello 42"

    def test_crlf_no_surrounding_spaces(self):
        result = run_program(parse_program("""
            (startup (make m))
            (p r (m) --> (write one (crlf) two) (remove 1))
        """))
        assert result.output == "one\ntwo"

    def test_quoted_symbol_rendered_quoted(self):
        result = run_program(parse_program("""
            (startup (make m))
            (p r (m) --> (write |two words|) (remove 1))
        """))
        assert result.output == "|two words|"


class TestHaltMidRhs:
    def test_actions_after_halt_not_executed(self):
        interp, record = fire("(p r (a) --> (halt) (make b))",
                              [("a", {})])
        assert record is not None
        assert not any(w.cls == "b" for w in interp.wm)

    def test_interpreter_stays_halted(self):
        interp, _ = fire("(p r (a) --> (halt))", [("a", {})])
        assert interp.step() is None


class TestBindScoping:
    def test_bind_visible_to_later_actions_only(self):
        result = run_program(parse_program("""
            (startup (make m ^v 5))
            (p r (m ^v <x>)
              --> (bind <y> (compute <x> * 2))
                  (make out ^v <y>)
                  (remove 1))
        """))
        assert result.quiesced

    def test_rebind_overwrites(self):
        interp, _ = fire(
            "(p r (a ^v <x>) --> (bind <x> 99) (make b ^v <x>))",
            [("a", {"v": 1})])
        [b] = [w for w in interp.wm if w.cls == "b"]
        assert b.get("v") == 99


class TestDirectExecute:
    def test_unknown_rhs_variable_raises_at_execute(self):
        # Construct an instantiation with missing bindings to hit the
        # runtime guard (the parser normally prevents this).
        production = parse_production(
            "(p r (a ^v <x>) --> (make b ^v <x>))")
        wm = WorkingMemory()
        wme = wm.add("a", {"v": 1})
        inst = Instantiation(production=production, wmes=(wme,),
                             bindings={})  # <x> deliberately missing
        with pytest.raises(ExecutionError):
            execute(inst, wm)

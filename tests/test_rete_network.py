"""Behavioural tests for the Rete network: joins, negation, deletion,
state invariants and activation events."""

import pytest

from repro.ops5 import parse_production
from repro.ops5.wme import WME
from repro.rete import ActivationCounter, ReteNetwork, build_network


def net_for(*sources):
    return build_network([parse_production(s) for s in sources])


def names(network):
    return sorted(i.production.name for i in network.conflict_set())


class TestJoins:
    def test_two_ce_join_on_variable(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 7}))
        assert names(net) == []
        net.add_wme(WME(2, "b", {"w": 7}))
        assert names(net) == ["r"]

    def test_join_respects_values(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 7}))
        net.add_wme(WME(2, "b", {"w": 8}))
        assert names(net) == []

    def test_order_independence_right_then_left(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        net.add_wme(WME(2, "b", {"w": 7}))   # CE2 first
        net.add_wme(WME(1, "a", {"v": 7}))   # CE1 second
        assert names(net) == ["r"]

    def test_three_ce_chain(self):
        net = net_for("""
            (p r (a ^v <x>) (b ^w <x> ^u <y>) (c ^z <y>) --> (remove 1))
        """)
        net.add_wme(WME(1, "a", {"v": 1}))
        net.add_wme(WME(2, "b", {"w": 1, "u": 2}))
        net.add_wme(WME(3, "c", {"z": 2}))
        assert names(net) == ["r"]

    def test_cross_product_counts(self):
        net = net_for("(p r (a) (b) --> (remove 1))")
        for i in range(3):
            net.add_wme(WME(i + 1, "a", {}))
        for i in range(3):
            net.add_wme(WME(i + 4, "b", {}))
        assert len(net.conflict_set()) == 9

    def test_residual_relational_join(self):
        net = net_for("(p r (a ^v <x>) (b ^w > <x>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 5}))
        net.add_wme(WME(2, "b", {"w": 6}))
        net.add_wme(WME(3, "b", {"w": 4}))
        assert len(net.conflict_set()) == 1

    def test_same_wme_both_ces(self):
        net = net_for("(p r (a ^v <x>) (a ^v <x>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 1}))
        insts = net.conflict_set()
        assert len(insts) == 1
        assert [w.wme_id for w in insts[0].wmes] == [1, 1]

    def test_bindings_available_in_instantiation(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x> ^q <y>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 7}))
        net.add_wme(WME(2, "b", {"w": 7, "q": "hello"}))
        [inst] = net.conflict_set()
        assert inst.bindings == {"x": 7, "y": "hello"}


class TestDeletion:
    def test_delete_left_wme_retracts(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        wa = WME(1, "a", {"v": 7})
        net.add_wme(wa)
        net.add_wme(WME(2, "b", {"w": 7}))
        assert len(net.conflict_set()) == 1
        net.remove_wme(wa)
        assert net.conflict_set() == []

    def test_delete_right_wme_retracts(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        wb = WME(2, "b", {"w": 7})
        net.add_wme(WME(1, "a", {"v": 7}))
        net.add_wme(wb)
        net.remove_wme(wb)
        assert net.conflict_set() == []

    def test_memories_empty_after_full_retraction(self):
        net = net_for("""
            (p r (a ^v <x>) (b ^w <x>) (c) --> (remove 1))
        """)
        wmes = [WME(1, "a", {"v": 7}), WME(2, "b", {"w": 7}),
                WME(3, "c", {})]
        for w in wmes:
            net.add_wme(w)
        assert len(net.conflict_set()) == 1
        for w in wmes:
            net.remove_wme(w)
        assert net.conflict_set() == []
        assert net.memories.is_empty()

    def test_partial_deletion_keeps_other_matches(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        net.add_wme(WME(1, "a", {"v": 7}))
        net.add_wme(WME(2, "b", {"w": 7}))
        net.add_wme(WME(3, "b", {"w": 7}))
        assert len(net.conflict_set()) == 2
        net.remove_wme(WME(2, "b", {"w": 7}))
        assert len(net.conflict_set()) == 1


class TestNegation:
    def test_negated_ce_blocks_and_releases(self):
        net = net_for("(p r (goal) -(blocker) --> (remove 1))")
        net.add_wme(WME(1, "goal", {}))
        assert names(net) == ["r"]
        blocker = WME(2, "blocker", {})
        net.add_wme(blocker)
        assert names(net) == []
        net.remove_wme(blocker)
        assert names(net) == ["r"]

    def test_negation_with_join_variable(self):
        net = net_for(
            "(p r (goal ^obj <o>) -(done ^obj <o>) --> (remove 1))")
        net.add_wme(WME(1, "goal", {"obj": "x"}))
        net.add_wme(WME(2, "done", {"obj": "y"}))  # different obj: no block
        assert names(net) == ["r"]
        net.add_wme(WME(3, "done", {"obj": "x"}))
        assert names(net) == []

    def test_negation_count_multiple_blockers(self):
        net = net_for("(p r (goal) -(blocker) --> (remove 1))")
        net.add_wme(WME(1, "goal", {}))
        b1, b2 = WME(2, "blocker", {}), WME(3, "blocker", {})
        net.add_wme(b1)
        net.add_wme(b2)
        net.remove_wme(b1)
        assert names(net) == []  # b2 still blocks
        net.remove_wme(b2)
        assert names(net) == ["r"]

    def test_token_arriving_while_blocked_never_propagates(self):
        net = net_for("(p r (goal) -(blocker) --> (remove 1))")
        net.add_wme(WME(1, "blocker", {}))
        net.add_wme(WME(2, "goal", {}))
        assert names(net) == []

    def test_negation_mid_chain(self):
        net = net_for("""
            (p r (a ^v <x>) -(hold ^v <x>) (b ^w <x>) --> (remove 1))
        """)
        net.add_wme(WME(1, "a", {"v": 1}))
        net.add_wme(WME(2, "b", {"w": 1}))
        assert names(net) == ["r"]
        net.add_wme(WME(3, "hold", {"v": 1}))
        assert names(net) == []

    def test_negation_cleanup_leaves_no_state(self):
        net = net_for("(p r (goal) -(blocker) --> (remove 1))")
        g, b = WME(1, "goal", {}), WME(2, "blocker", {})
        net.add_wme(g)
        net.add_wme(b)
        net.remove_wme(b)
        net.remove_wme(g)
        assert net.memories.is_empty()
        assert net.conflict_set() == []


class TestAlwaysFalseCE:
    def test_positive_always_false_never_matches(self):
        net = net_for("(p r (a ^v > <x>) --> (halt))")
        net.add_wme(WME(1, "a", {"v": 5}))
        assert net.conflict_set() == []

    def test_negated_always_false_always_satisfied(self):
        net = net_for("(p r (goal) -(a ^v > <x>) --> (remove 1))")
        net.add_wme(WME(1, "goal", {}))
        net.add_wme(WME(2, "a", {"v": 5}))
        assert names(net) == ["r"]


class TestActivationEvents:
    def test_counter_sees_left_and_right(self):
        net = net_for("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))")
        counter = ActivationCounter()
        net.observers.append(counter)
        net.add_wme(WME(1, "a", {"v": 7}))   # left activation (CE1)
        net.add_wme(WME(2, "b", {"w": 7}))   # right activation (CE2)
        assert counter.left == 1
        assert counter.right == 1
        assert counter.terminal == 1
        assert counter.successors == 1

    def test_parent_child_linkage(self):
        events = []
        net = net_for(
            "(p r (a ^v <x>) (b ^w <x>) (c) --> (remove 1))")
        net.observers.append(events.append)
        net.add_wme(WME(1, "c", {}))
        net.add_wme(WME(2, "a", {"v": 7}))
        net.add_wme(WME(3, "b", {"w": 7}))
        by_id = {e.act_id: e for e in events}
        roots = [e for e in events if e.parent_id is None]
        children = [e for e in events if e.parent_id is not None]
        assert len(roots) == 3
        for child in children:
            assert child.parent_id in by_id
            assert by_id[child.parent_id].act_id < child.act_id

    def test_successor_count_on_cross_product(self):
        net = net_for("(p r (a) (b) --> (remove 1))")
        counter = ActivationCounter()
        for i in range(5):
            net.add_wme(WME(i + 1, "a", {}))
        net.observers.append(counter)
        net.add_wme(WME(99, "b", {}))
        # One right activation meeting 5 stored left tokens.
        assert counter.right == 1
        assert counter.successors == 5

    def test_no_observer_no_overhead_path(self):
        net = net_for("(p r (a) --> (halt))")
        net.add_wme(WME(1, "a", {}))   # must simply not crash
        assert len(net.conflict_set()) == 1

"""Tests of the observability layer: metrics registry and logging."""

import io
import logging
import sys

import pytest

from repro.obs import (configure_logging, get_logger, get_registry,
                       log_event, reset_registry, verbosity_level)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("t")
        for value in (0.0, 1.0, 2.0, 8.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 11.0
        assert histogram.mean == pytest.approx(2.75)
        assert histogram.min == 0.0 and histogram.max == 8.0

    def test_power_of_two_buckets(self):
        histogram = Histogram("t")
        histogram.observe(0.0)    # zero bucket (-1)
        histogram.observe(0.5)    # <= 1 -> bucket 0
        histogram.observe(3.0)    # ceil(log2 3) = 2
        histogram.observe(4.0)    # ceil(log2 4) = 2
        assert histogram.buckets == {-1: 1, 0: 1, 2: 2}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("t").observe(-0.5)

    def test_empty_mean_is_zero(self):
        assert Histogram("t").mean == 0.0


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("a")
        with pytest.raises(ValueError):
            registry.counter("h")

    def test_snapshot_is_json_ready_and_prefixed(self):
        import json
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.counter("other.n").inc()
        registry.histogram("cache.ms").observe(2.0)
        snap = registry.snapshot("cache.")
        json.dumps(snap)
        assert snap["cache.hits"] == 3
        assert "other.n" not in snap
        assert snap["cache.ms"]["count"] == 1

    def test_counters_listing_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [c.name for c in registry.counters()] == ["a", "b"]

    def test_default_registry_reset(self):
        get_registry().counter("test_obs.tmp").inc()
        reset_registry()
        assert get_registry().snapshot("test_obs.") == {}


class TestLogging:
    def test_verbosity_mapping(self):
        assert verbosity_level() == logging.WARNING
        assert verbosity_level(verbose=1) == logging.INFO
        assert verbosity_level(verbose=2) == logging.DEBUG
        assert verbosity_level(verbose=5) == logging.DEBUG
        assert verbosity_level(verbose=3, quiet=True) == logging.ERROR

    def test_get_logger_normalizes_names(self):
        assert get_logger("mpc.parallel") is \
            logging.getLogger("repro.mpc.parallel")
        assert get_logger("repro.trace") is logging.getLogger("repro.trace")
        assert get_logger("") is logging.getLogger("repro")

    def test_configure_is_idempotent(self):
        root = logging.getLogger("repro")
        before = len(root.handlers)
        configure_logging(verbose=1)
        after_first = len(root.handlers)
        configure_logging(verbose=2)
        configure_logging(quiet=True)
        assert len(root.handlers) == after_first
        assert after_first <= before + 1
        # leave the suite in the default state
        configure_logging()

    def test_configured_stream_receives_messages(self):
        stream = io.StringIO()
        configure_logging(verbose=1, stream=stream)
        get_logger("test_obs").info("hello %d", 7)
        configure_logging(stream=sys.stderr)  # restore for other tests
        assert "INFO repro.test_obs: hello 7" in stream.getvalue()

    def test_log_event_formatting(self):
        stream = io.StringIO()
        configure_logging(verbose=2, stream=stream)
        log_event(get_logger("test_obs"), "cache_hit",
                  key="abc", elapsed=1.25, note="two words", n=3)
        configure_logging(stream=sys.stderr)
        line = stream.getvalue().strip()
        assert "cache_hit key=abc elapsed=1.25 note='two words' n=3" \
            in line

    def test_log_event_skips_when_disabled(self):
        stream = io.StringIO()
        configure_logging(quiet=True, stream=stream)
        log_event(get_logger("test_obs"), "noisy", level=logging.DEBUG)
        configure_logging(stream=sys.stderr)
        assert stream.getvalue() == ""

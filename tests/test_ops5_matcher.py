"""Unit tests for CE matching and the naive matcher."""

import pytest

from repro.ops5 import (NaiveMatcher, find_instantiations, match_ce,
                        parse_production)
from repro.ops5.wme import WME


def ce_of(source_ce, negated=False):
    neg = "-" if negated else ""
    p = parse_production(f"(p t (dummy) {neg}{source_ce} --> (halt))")
    return p.lhs[1]


def first_ce(source_ce):
    p = parse_production(f"(p t {source_ce} --> (halt))")
    return p.lhs[0]


class TestMatchCE:
    def test_class_mismatch(self):
        ce = first_ce("(block)")
        assert match_ce(ce, WME(1, "hand", {}), {}) is None

    def test_constant_match(self):
        ce = first_ce("(block ^color blue)")
        assert match_ce(ce, WME(1, "block", {"color": "blue"}), {}) == {}

    def test_constant_mismatch(self):
        ce = first_ce("(block ^color blue)")
        assert match_ce(ce, WME(1, "block", {"color": "red"}), {}) is None

    def test_missing_attr_reads_nil(self):
        ce = first_ce("(block ^color nil)")
        assert match_ce(ce, WME(1, "block", {}), {}) == {}

    def test_variable_binds(self):
        ce = first_ce("(block ^name <x>)")
        out = match_ce(ce, WME(1, "block", {"name": "b1"}), {})
        assert out == {"x": "b1"}

    def test_bound_variable_consistency_pass(self):
        ce = first_ce("(block ^name <x>)")
        out = match_ce(ce, WME(1, "block", {"name": "b1"}), {"x": "b1"})
        assert out == {"x": "b1"}

    def test_bound_variable_consistency_fail(self):
        ce = first_ce("(block ^name <x>)")
        assert match_ce(ce, WME(1, "block", {"name": "b1"}),
                        {"x": "b2"}) is None

    def test_intra_ce_repeated_variable(self):
        ce = first_ce("(pair ^a <x> ^b <x>)")
        assert match_ce(ce, WME(1, "pair", {"a": 1, "b": 1}), {}) is not None
        assert match_ce(ce, WME(1, "pair", {"a": 1, "b": 2}), {}) is None

    def test_relational_predicate(self):
        ce = first_ce("(block ^size > 5)")
        assert match_ce(ce, WME(1, "block", {"size": 6}), {}) is not None
        assert match_ce(ce, WME(1, "block", {"size": 5}), {}) is None

    def test_relational_against_symbol_fails_not_raises(self):
        ce = first_ce("(block ^size > 5)")
        assert match_ce(ce, WME(1, "block", {"size": "big"}), {}) is None

    def test_relational_on_unbound_variable_fails(self):
        # OPS5 requires <x> bound before "> <x>" can be evaluated.
        ce = first_ce("(block ^size > <x>)")
        assert match_ce(ce, WME(1, "block", {"size": 6}), {}) is None
        assert match_ce(ce, WME(1, "block", {"size": 6}),
                        {"x": 5}) is not None

    def test_conjunctive_restriction(self):
        ce = first_ce("(block ^size { > 2 < 10 })")
        assert match_ce(ce, WME(1, "block", {"size": 5}), {}) is not None
        assert match_ce(ce, WME(1, "block", {"size": 12}), {}) is None

    def test_input_bindings_not_mutated(self):
        ce = first_ce("(block ^name <x>)")
        bindings = {}
        match_ce(ce, WME(1, "block", {"name": "b1"}), bindings)
        assert bindings == {}


class TestFindInstantiations:
    def _production(self):
        return parse_production("""
            (p stack
              (block ^name <top> ^on <bot>)
              (block ^name <bot> ^clear no)
              --> (halt))
        """)

    def test_join_on_shared_variable(self):
        p = self._production()
        wmes = [
            WME(1, "block", {"name": "a", "on": "b"}, timestamp=1),
            WME(2, "block", {"name": "b", "clear": "no"}, timestamp=2),
            WME(3, "block", {"name": "c", "clear": "no"}, timestamp=3),
        ]
        insts = find_instantiations(p, wmes)
        assert len(insts) == 1
        assert [w.wme_id for w in insts[0].wmes] == [1, 2]
        assert insts[0].bindings == {"top": "a", "bot": "b"}

    def test_cross_product_when_no_join_variable(self):
        p = parse_production("(p cp (a) (b) --> (halt))")
        wmes = [WME(i, "a", {}) for i in range(1, 4)] + \
               [WME(i, "b", {}) for i in range(4, 7)]
        insts = find_instantiations(p, wmes)
        assert len(insts) == 9  # 3 x 3 cross product

    def test_negated_ce_blocks(self):
        p = parse_production("(p r (goal) -(block ^color blue) --> (halt))")
        goal = WME(1, "goal", {})
        blue = WME(2, "block", {"color": "blue"})
        assert len(find_instantiations(p, [goal])) == 1
        assert len(find_instantiations(p, [goal, blue])) == 0

    def test_negated_ce_with_bound_variable(self):
        p = parse_production("""
            (p r (goal ^obj <o>) -(block ^name <o>) --> (halt))
        """)
        goal = WME(1, "goal", {"obj": "b1"})
        other_block = WME(2, "block", {"name": "b2"})
        matching_block = WME(3, "block", {"name": "b1"})
        assert len(find_instantiations(p, [goal, other_block])) == 1
        assert len(find_instantiations(p, [goal, matching_block])) == 0

    def test_negated_ce_fresh_variable_is_wildcard(self):
        # -(block ^name <any>) is satisfied only when NO block has a name.
        p = parse_production("(p r (goal) -(block ^name <any>) --> (halt))")
        goal = WME(1, "goal", {})
        named = WME(2, "block", {"name": "x"})
        assert len(find_instantiations(p, [goal])) == 1
        assert len(find_instantiations(p, [goal, named])) == 0

    def test_same_wme_may_match_two_ces(self):
        # OPS5 allows one wme to satisfy multiple CEs.
        p = parse_production("(p r (a ^v <x>) (a ^v <x>) --> (halt))")
        w = WME(1, "a", {"v": 1})
        insts = find_instantiations(p, [w])
        assert len(insts) == 1
        assert [x.wme_id for x in insts[0].wmes] == [1, 1]


class TestNaiveMatcher:
    def test_incremental_add_remove(self):
        m = NaiveMatcher()
        p = parse_production("(p r (a) (b) --> (halt))")
        m.add_production(p)
        assert m.conflict_set() == []
        wa = WME(1, "a", {})
        wb = WME(2, "b", {})
        m.add_wme(wa)
        m.add_wme(wb)
        assert len(m.conflict_set()) == 1
        m.remove_wme(wa)
        assert m.conflict_set() == []

    def test_multiple_productions(self):
        m = NaiveMatcher()
        m.add_production(parse_production("(p r1 (a) --> (halt))"))
        m.add_production(parse_production("(p r2 (a) --> (halt))"))
        m.add_wme(WME(1, "a", {}))
        names = sorted(i.production.name for i in m.conflict_set())
        assert names == ["r1", "r2"]

    def test_remove_unknown_wme_is_noop(self):
        m = NaiveMatcher()
        m.remove_wme(WME(9, "a", {}))  # must not raise

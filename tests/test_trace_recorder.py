"""Tests for trace recording from live Rete runs."""

import pytest

from repro.ops5 import Interpreter, parse_program
from repro.rete import ReteNetwork
from repro.trace import (KIND_TERMINAL, TraceRecorder, record_program,
                         validate_trace)

PROGRAM = """
(startup
  (make stage ^n 1)
  (make item ^v 1)
  (make item ^v 2))
(p bump
  (stage ^n <k>)
  (item ^v <k>)
  -->
  (remove 2)
  (modify 1 ^n 2))
(p done
  (stage ^n 3)
  -->
  (remove 1))
"""


def record():
    return record_program(parse_program(PROGRAM), "test-section",
                          drop_setup_cycle=False)


class TestRecording:
    def test_cycle_zero_holds_setup(self):
        trace = record()
        assert trace.cycles[0].index == 0
        assert len(trace.cycles[0]) > 0

    def test_trace_validates(self):
        assert validate_trace(record()) == []

    def test_cycles_follow_firings(self):
        trace = record()
        # one bump firing (stage 0 + item 1); stage becomes 1, no item 1
        # left... items are v=1 and v=2; stage 0 matches item... let's
        # just check setup + at least one firing cycle exist.
        assert len(trace.cycles) >= 2

    def test_roots_have_no_parent(self):
        trace = record()
        for cycle in trace:
            for root in cycle.roots():
                assert root.parent_id is None

    def test_successor_links_bidirectional(self):
        trace = record()
        for cycle in trace:
            for act in cycle:
                for succ_id in act.successors:
                    assert cycle.activations[succ_id].parent_id == \
                        act.act_id

    def test_generated_activations_are_left(self):
        trace = record()
        for cycle in trace:
            for act in cycle:
                if act.parent_id is not None and act.kind != KIND_TERMINAL:
                    assert act.side == "left"

    def test_drop_setup_cycle(self):
        full = record_program(parse_program(PROGRAM), "s",
                              drop_setup_cycle=False)
        trimmed = record_program(parse_program(PROGRAM), "s",
                                 drop_setup_cycle=True)
        assert len(trimmed.cycles) == len(full.cycles) - 1
        assert all(c.index >= 1 for c in trimmed.cycles)

    def test_stats_count_terminal_separately(self):
        trace = record()
        stats = trace.stats()
        assert stats.total == stats.left + stats.right
        assert stats.terminal >= 1  # at least one instantiation appeared

    def test_bucket_key_carries_join_values(self):
        trace = record()
        keyed = [a for c in trace for a in c
                 if a.kind != KIND_TERMINAL and a.key.values]
        # The bump production joins on <k>, so some bucket keys carry
        # the joined value.
        assert keyed, "expected at least one value-discriminated bucket"

    def test_manual_cycle_control(self):
        from repro.ops5 import parse_production
        from repro.ops5.wme import WME
        net = ReteNetwork()
        net.add_production(
            parse_production("(p r (a ^v <x>) (b ^w <x>) --> (remove 1))"))
        rec = TraceRecorder(net)
        rec.set_cycle(5)
        net.add_wme(WME(1, "a", {"v": 1}))
        rec.set_cycle(6)
        net.add_wme(WME(2, "b", {"w": 1}))
        trace = rec.section("manual")
        assert [c.index for c in trace] == [5, 6]


class TestSectionHelpers:
    def test_slice(self):
        trace = record()
        sub = trace.slice(1, 2)
        assert len(sub.cycles) == 1
        assert sub.cycles[0].index == trace.cycles[1].index

    def test_total_activations(self):
        trace = record()
        assert trace.total_activations() == \
            sum(len(c) for c in trace.cycles)

    def test_node_ids_excludes_terminals(self):
        trace = record()
        terminal_nodes = {a.node_id for c in trace for a in c
                          if a.kind == KIND_TERMINAL}
        assert not (set(trace.node_ids()) & terminal_nodes)

    def test_table_5_2_style_row(self):
        stats = record().stats()
        row = stats.row("test")
        assert "test" in row and "%" in row

"""End-to-end interpreter runs on the flattened kernel.

Full OPS5 programs — the classic demos and the rubik/tourney/weaver
match workloads — run token-for-token identically on the fast kernel
(numpy on and off) and the preserved reference engine: same firing
sequence, same wme ids in every instantiation, same output, same halt
state.  The recorded match scripts also replay into every engine with
identical final conflict sets, which is the property the rete bench
relies on."""

import pytest

from repro.ops5 import Interpreter, parse_program
from repro.ops5.conflict import Strategy
from repro.rete import ReferenceReteNetwork, ReteNetwork
from repro.workloads import (MATCH_PROGRAMS, adversarial_cross_product,
                             record_match_deltas, replay_deltas)
from repro.workloads.programs import (BLOCKS_WORLD, GRID_ROUTER,
                                      MONKEY_AND_BANANAS)

ENGINES = {
    "reference": ReferenceReteNetwork,
    "fast": ReteNetwork,
    "fast-nonumpy": lambda: ReteNetwork(use_numpy=False),
}

PROGRAMS = {
    "blocks": BLOCKS_WORLD,
    "monkey": MONKEY_AND_BANANAS,
    "router": GRID_ROUTER,
    "rubik": MATCH_PROGRAMS["rubik"](seed=0),
    "tourney": MATCH_PROGRAMS["tourney"](seed=0),
    "weaver": MATCH_PROGRAMS["weaver"](seed=0),
}

#: Golden MRA cycle counts for the seed-0 match workloads.  These pin
#: the workloads themselves: a parser, conflict-resolution or matcher
#: change that alters any firing sequence shows up here first.
GOLDEN_CYCLES = {"rubik": 41, "tourney": 56, "weaver": 107}


def _run(source, matcher):
    interp = Interpreter(matcher=matcher, strategy=Strategy.LEX)
    interp.load_program(parse_program(source))
    result = interp.run(max_cycles=5000)
    firings = [(rec.cycle, rec.instantiation.production.name,
                tuple(w.wme_id for w in rec.instantiation.wmes),
                tuple(rec.output))
               for rec in result.firings]
    return firings, result.halted, result.quiesced


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_fast_kernel_runs_token_for_token(name):
    source = PROGRAMS[name]
    runs = {ename: _run(source, factory())
            for ename, factory in ENGINES.items()}
    reference = runs["reference"]
    assert reference[0], f"{name}: reference run fired nothing"
    for ename in ("fast", "fast-nonumpy"):
        assert runs[ename] == reference, f"{name}: {ename} diverged"


@pytest.mark.parametrize("name", sorted(GOLDEN_CYCLES))
def test_match_workloads_hit_golden_cycle_counts(name):
    script = record_match_deltas(PROGRAMS[name])
    assert script.halted
    assert script.cycles == GOLDEN_CYCLES[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_CYCLES))
def test_recorded_scripts_replay_identically(name):
    script = record_match_deltas(PROGRAMS[name])
    sigs = []
    for factory in ENGINES.values():
        conflict_set = replay_deltas(factory(), script.program,
                                     script.deltas)
        sigs.append(sorted((inst.production.name,
                            tuple(w.wme_id for w in inst.wmes))
                           for inst in conflict_set))
    assert sigs[0] == sigs[1] == sigs[2]


def test_adversarial_cross_product_forms_n_squared_then_drains():
    n = 12
    program, deltas = adversarial_cross_product(n)
    net = ReteNetwork()
    for production in program.productions:
        net.add_production(production)
    adds = [d for d in deltas if d[0] == "+"]
    removes = [d for d in deltas if d[0] == "-"]
    for _, wme in adds:
        net.add_wme(wme)
    assert len(net.conflict_set()) == n * n
    for _, wme in removes:
        net.remove_wme(wme)
    assert net.conflict_set() == []
    assert net.memories.is_empty()
    assert net.kernel.pool.live_count() == 0


def test_vectorized_alpha_engages_on_rubik():
    """Rubik's 24 ``^pos`` constant patterns are the designed numpy
    showcase; if numpy is importable the kernel must vectorize them."""
    from repro.rete import resolve_numpy
    if resolve_numpy(True) is None:
        pytest.skip("numpy not installed")
    script = record_match_deltas(PROGRAMS["rubik"])
    net = ReteNetwork(use_numpy=True)
    replay_deltas(net, script.program, script.deltas)
    assert net.kernel.numpy_engaged

"""Unit tests for bucket-to-processor distribution strategies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpc import (ExplicitMapping, RandomMapping, RoundRobinMapping,
                       greedy_assignment, greedy_mapping)
from repro.rete.hashing import BucketKey


def keys(n, node=1):
    return [BucketKey(node, (i,)) for i in range(n)]


class TestRoundRobin:
    def test_in_range(self):
        m = RoundRobinMapping(n_procs=7)
        assert all(0 <= m.processor_for(k) < 7 for k in keys(100))

    def test_deterministic(self):
        a = RoundRobinMapping(n_procs=8)
        b = RoundRobinMapping(n_procs=8)
        assert [a.processor_for(k) for k in keys(50)] == \
            [b.processor_for(k) for k in keys(50)]

    def test_same_key_both_sides_same_processor(self):
        """Left and right buckets of one index share a processor
        (Section 3.1): identical keys must map identically."""
        m = RoundRobinMapping(n_procs=8)
        k = BucketKey(5, ("v", 3))
        assert m.processor_for(k) == m.processor_for(BucketKey(5, ("v", 3)))

    def test_single_processor(self):
        m = RoundRobinMapping(n_procs=1)
        assert all(m.processor_for(k) == 0 for k in keys(20))

    def test_spreads_buckets(self):
        m = RoundRobinMapping(n_procs=4)
        procs = {m.processor_for(k) for k in keys(200)}
        assert procs == {0, 1, 2, 3}


class TestRandom:
    def test_seeded_determinism(self):
        a = RandomMapping(n_procs=8, seed=42)
        b = RandomMapping(n_procs=8, seed=42)
        assert [a.processor_for(k) for k in keys(50)] == \
            [b.processor_for(k) for k in keys(50)]

    def test_different_seeds_differ(self):
        a = RandomMapping(n_procs=8, seed=1)
        b = RandomMapping(n_procs=8, seed=2)
        assert [a.processor_for(k) for k in keys(50)] != \
            [b.processor_for(k) for k in keys(50)]

    def test_in_range(self):
        m = RandomMapping(n_procs=5, seed=3)
        assert all(0 <= m.processor_for(k) < 5 for k in keys(100))


class TestExplicit:
    def test_explicit_assignment_honoured(self):
        k = BucketKey(1, ("hot",))
        m = ExplicitMapping(n_procs=4, assignment={k: 3})
        assert m.processor_for(k) == 3

    def test_fallback_to_round_robin(self):
        m = ExplicitMapping(n_procs=4, assignment={})
        rr = RoundRobinMapping(n_procs=4)
        for k in keys(20):
            assert m.processor_for(k) == rr.processor_for(k)

    def test_out_of_range_assignment_rejected(self):
        k = BucketKey(1, ())
        m = ExplicitMapping(n_procs=2, assignment={k: 5})
        with pytest.raises(ValueError):
            m.processor_for(k)


class TestGreedy:
    def test_heaviest_buckets_separated(self):
        work = {BucketKey(1, (i,)): float(w)
                for i, w in enumerate([100, 90, 1, 1])}
        assignment = greedy_assignment(work, n_procs=2)
        heavy = [k for k, w in work.items() if w >= 90]
        assert assignment[heavy[0]] != assignment[heavy[1]]

    def test_balance_quality(self):
        """LPT is within 4/3 of optimum; for many small items it should
        be nearly perfect."""
        work = {BucketKey(1, (i,)): 10.0 for i in range(100)}
        assignment = greedy_assignment(work, n_procs=4)
        loads = [0.0] * 4
        for k, p in assignment.items():
            loads[p] += work[k]
        assert max(loads) - min(loads) <= 10.0

    def test_deterministic(self):
        work = {BucketKey(1, (i,)): float(i % 7) for i in range(30)}
        assert greedy_assignment(work, 3) == greedy_assignment(work, 3)

    def test_greedy_mapping_wraps_assignment(self):
        work = {BucketKey(1, (0,)): 50.0}
        m = greedy_mapping(work, n_procs=4)
        assert m.processor_for(BucketKey(1, (0,))) == \
            greedy_assignment(work, 4)[BucketKey(1, (0,))]

    def test_empty_work(self):
        assert greedy_assignment({}, 4) == {}


@given(n_procs=st.integers(min_value=1, max_value=32),
       weights=st.lists(st.floats(min_value=0.1, max_value=1000),
                        min_size=1, max_size=60))
def test_greedy_respects_lpt_bound(n_procs, weights):
    """Greedy list scheduling guarantees makespan <= total/m + max item.

    (Graham's 4/3 factor bounds LPT against the true OPT, which we do
    not know; applying it to the OPT *lower bound* max(total/m, max)
    is invalid — e.g. two unit items on three processors have makespan
    1.0 but lower bound 2/3.  The bound below is the one every greedy
    schedule provably satisfies, and is within 2x of the lower bound.)"""
    work = {BucketKey(1, (i,)): w for i, w in enumerate(weights)}
    assignment = greedy_assignment(work, n_procs)
    loads = [0.0] * n_procs
    for k, p in assignment.items():
        loads[p] += work[k]
    assert max(loads) <= sum(weights) / n_procs + max(weights) + 1e-9

"""Unit tests for the OPS5 parser."""

import pytest

from repro.ops5 import (BindAction, ConditionElement, Constant, HaltAction,
                        MakeAction, ModifyAction, ParseError, Predicate,
                        RemoveAction, SemanticError, Variable, WriteAction,
                        parse_production, parse_program)


class TestLHSParsing:
    def test_classes_and_order(self):
        p = parse_production("""
            (p r (a) (b) -(c) --> (halt))
        """)
        assert [ce.cls for ce in p.lhs] == ["a", "b", "c"]
        assert [ce.negated for ce in p.lhs] == [False, False, True]

    def test_constant_test(self):
        p = parse_production("(p r (block ^color blue) --> (halt))")
        t = p.lhs[0].tests[0]
        assert t.attr == "color"
        assert t.predicate is Predicate.EQ
        assert t.operand == Constant("blue")

    def test_variable_binding(self):
        p = parse_production("(p r (block ^name <x>) --> (halt))")
        t = p.lhs[0].tests[0]
        assert t.operand == Variable("x")

    def test_relational_predicate(self):
        p = parse_production("(p r (block ^size > 5) --> (halt))")
        t = p.lhs[0].tests[0]
        assert t.predicate is Predicate.GT
        assert t.operand == Constant(5)

    def test_relational_against_variable(self):
        p = parse_production(
            "(p r (a ^v <x>) (b ^w > <x>) --> (halt))")
        t = p.lhs[1].tests[0]
        assert t.predicate is Predicate.GT
        assert t.operand == Variable("x")

    def test_conjunctive_braces(self):
        p = parse_production(
            "(p r (block ^size { > 2 <= <max> <> 7 }) --> (halt))")
        tests = p.lhs[0].tests
        assert len(tests) == 3
        assert [t.predicate for t in tests] == [
            Predicate.GT, Predicate.LE, Predicate.NE]
        assert all(t.attr == "size" for t in tests)

    def test_empty_braces_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (block ^size { }) --> (halt))")

    def test_bare_class_ce(self):
        p = parse_production("(p r (goal) --> (halt))")
        assert p.lhs[0].tests == ()


class TestRHSParsing:
    def test_make(self):
        p = parse_production(
            "(p r (a ^v <x>) --> (make block ^name <x> ^color red))")
        action = p.rhs[0]
        assert isinstance(action, MakeAction)
        assert action.cls == "block"
        assert action.assignments[0][0] == "name"
        assert action.assignments[1][1].operand == Constant("red")

    def test_remove_multiple(self):
        p = parse_production("(p r (a) (b) --> (remove 1 2))")
        assert p.rhs[0] == RemoveAction(ce_indices=(1, 2))

    def test_remove_non_integer_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (a) --> (remove x))")

    def test_modify(self):
        p = parse_production("(p r (a ^v 1) --> (modify 1 ^v 2))")
        action = p.rhs[0]
        assert isinstance(action, ModifyAction)
        assert action.ce_index == 1

    def test_write_with_crlf(self):
        p = parse_production("(p r (a) --> (write done (crlf)))")
        action = p.rhs[0]
        assert isinstance(action, WriteAction)
        assert action.values[-1].operand == Constant("\n")

    def test_halt(self):
        p = parse_production("(p r (a) --> (halt))")
        assert isinstance(p.rhs[0], HaltAction)

    def test_bind(self):
        p = parse_production("(p r (a ^v <x>) --> (bind <y> <x>))")
        action = p.rhs[0]
        assert isinstance(action, BindAction)
        assert action.variable == "y"

    def test_unknown_action_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p r (a) --> (explode))")

    def test_empty_rhs_allowed(self):
        p = parse_production("(p r (a) -->)")
        assert p.rhs == ()


class TestSemanticValidation:
    def test_first_ce_may_not_be_negated(self):
        with pytest.raises(SemanticError):
            parse_production("(p r -(a) (b) --> (halt))")

    def test_empty_lhs_rejected(self):
        with pytest.raises((ParseError, SemanticError)):
            parse_production("(p r --> (halt))")

    def test_remove_of_negated_ce_rejected(self):
        with pytest.raises(SemanticError):
            parse_production("(p r (a) -(b) --> (remove 2))")

    def test_modify_of_out_of_range_ce_rejected(self):
        with pytest.raises(SemanticError):
            parse_production("(p r (a) --> (modify 3 ^v 1))")

    def test_rhs_unbound_variable_rejected(self):
        with pytest.raises(SemanticError):
            parse_production("(p r (a) --> (make b ^v <nope>))")

    def test_bind_makes_variable_available(self):
        # <y> is unbound on the LHS but bound by the bind action.
        p = parse_production(
            "(p r (a ^v <x>) --> (bind <y> <x>) (make b ^v <y>))")
        assert len(p.rhs) == 2


class TestProgramForms:
    def test_multiple_productions(self):
        prog = parse_program("""
            (p r1 (a) --> (halt))
            (p r2 (b) --> (halt))
        """)
        assert [p.name for p in prog.productions] == ["r1", "r2"]
        assert prog.production("r2").name == "r2"

    def test_unknown_production_lookup_raises(self):
        prog = parse_program("(p r1 (a) --> (halt))")
        with pytest.raises(KeyError):
            prog.production("missing")

    def test_literalize_accepted(self):
        prog = parse_program("""
            (literalize block name color on)
            (p r (block) --> (halt))
        """)
        assert len(prog.productions) == 1

    def test_startup_collects_initial_wmes(self):
        prog = parse_program("""
            (startup (make block ^name b1) (make hand ^state free))
        """)
        assert prog.initial_wmes == (
            ("block", (("name", "b1"),)),
            ("hand", (("state", "free"),)),
        )

    def test_startup_rejects_non_make(self):
        with pytest.raises(ParseError):
            parse_program("(startup (remove 1))")

    def test_unknown_top_level_form_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(frobnicate)")

    def test_comments_ignored(self):
        prog = parse_program("""
            ; a whole-line comment
            (p r (a) --> (halt)) ; trailing comment
        """)
        assert len(prog.productions) == 1

    def test_parse_production_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_production("(p a (x) --> (halt)) (p b (y) --> (halt))")


class TestRoundTrip:
    def test_str_of_production_reparses(self):
        source = """
        (p clear-the-blue-block
          (block ^name <b2> ^color blue)
          (block ^name <b2> ^on <b1>)
          -(hand ^state busy)
          -->
          (remove 2)
          (make note ^text |cleared it|))
        """
        p1 = parse_production(source)
        p2 = parse_production(str(p1))
        assert p1 == p2

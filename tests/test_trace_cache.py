"""Tests for the content-addressed on-disk trace cache."""

import dataclasses

import pytest

import repro.trace.cache as trace_cache
from repro.trace import (cache_dir, cache_enabled, cached_trace, clear_cache,
                         invalidate, module_source, set_cache_enabled,
                         source_fingerprint, trace_key)
from repro.trace.cache import TRACE_FORMAT_VERSION
from repro.workloads import (SectionSpec, generate_section, rubik_section,
                             tourney_section, weaver_section)


@pytest.fixture(autouse=True)
def tmp_cache(tmp_path, monkeypatch):
    """Point the cache at a throwaway directory and start it empty."""
    monkeypatch.setenv(trace_cache.ENV_DIR, str(tmp_path / "cache"))
    monkeypatch.delenv(trace_cache.ENV_ENABLED, raising=False)
    trace_cache._memory.clear()
    set_cache_enabled(None)
    yield
    trace_cache._memory.clear()
    set_cache_enabled(None)


def small_trace(seed=0, name="cached"):
    return generate_section(SectionSpec(
        name=name, cycles=3, right_activations=40, left_activations=40,
        fanout=3, active_left_buckets=8, left_skew=0.5, seed=seed))


def assert_traces_equal(a, b):
    """Activation-by-activation equality, not just summary stats."""
    assert a.name == b.name
    assert len(a.cycles) == len(b.cycles)
    for ca, cb in zip(a.cycles, b.cycles):
        assert ca.index == cb.index
        acts_a, acts_b = ca.ordered(), cb.ordered()
        assert len(acts_a) == len(acts_b)
        for x, y in zip(acts_a, acts_b):
            assert dataclasses.asdict(x) == dataclasses.asdict(y)


class TestKeying:
    def test_key_depends_on_params(self):
        assert trace_key("demo", seed=0) != trace_key("demo", seed=1)

    def test_key_depends_on_kind_and_source(self):
        assert trace_key("a", source="s") != trace_key("b", source="s")
        assert (trace_key("a", source="old code")
                != trace_key("a", source="new code"))

    def test_key_is_filename_safe(self):
        key = trace_key("../../etc passwd!", seed=3)
        assert "/" not in key and " " not in key

    def test_key_folds_format_version(self, monkeypatch):
        before = trace_key("demo", seed=0)
        monkeypatch.setattr(trace_cache, "TRACE_FORMAT_VERSION",
                            TRACE_FORMAT_VERSION + 1)
        assert trace_key("demo", seed=0) != before

    def test_source_fingerprint_order_sensitive(self):
        assert source_fingerprint("a", "b") != source_fingerprint("b", "a")

    def test_module_source_reads_real_code(self):
        src = module_source("repro.workloads.rubik")
        assert "def rubik_section" in src


class TestRoundTrip:
    def test_cached_equals_fresh(self):
        key = trace_key("roundtrip", seed=7)
        built = []

        def build():
            built.append(True)
            return small_trace(seed=7)

        first = cached_trace(key, build)
        trace_cache._memory.clear()  # force the disk path
        second = cached_trace(key, build)
        assert len(built) == 1, "second call should load, not rebuild"
        assert_traces_equal(first, small_trace(seed=7))
        assert_traces_equal(second, small_trace(seed=7))

    def test_memory_layer_returns_same_object(self):
        key = trace_key("memo", seed=1)
        first = cached_trace(key, lambda: small_trace(seed=1))
        assert cached_trace(key, lambda: small_trace(seed=1)) is first

    def test_sections_identical_with_and_without_cache(self):
        for build in (rubik_section, tourney_section, weaver_section):
            cached = build()
            trace_cache._memory.clear()
            from_disk = build()
            set_cache_enabled(False)
            try:
                fresh = build()
            finally:
                set_cache_enabled(None)
            assert_traces_equal(cached, fresh)
            assert_traces_equal(from_disk, fresh)


class TestInvalidation:
    def test_source_change_triggers_rebuild(self):
        builds = []

        def build():
            builds.append(True)
            return small_trace()

        cached_trace(trace_key("prog", source="(p one ...)"), build)
        cached_trace(trace_key("prog", source="(p one MODIFIED ...)"),
                     build)
        assert len(builds) == 2, \
            "changed source must map to a different cache entry"

    def test_explicit_invalidate(self):
        key = trace_key("inv", seed=0)
        builds = []

        def build():
            builds.append(True)
            return small_trace()

        cached_trace(key, build)
        invalidate(key)
        cached_trace(key, build)
        assert len(builds) == 2

    def test_refresh_flag_rebuilds(self):
        key = trace_key("ref", seed=0)
        builds = []

        def build():
            builds.append(True)
            return small_trace()

        cached_trace(key, build)
        cached_trace(key, build, refresh=True)
        assert len(builds) == 2

    def test_clear_cache_removes_entries(self):
        key = trace_key("clr", seed=0)
        cached_trace(key, small_trace)
        assert any(cache_dir().iterdir())
        clear_cache()
        assert not trace_cache._memory
        assert not any(cache_dir().iterdir())

    def test_corrupt_entry_falls_back_to_build(self):
        key = trace_key("corrupt", seed=0)
        cached_trace(key, small_trace)
        trace_cache._memory.clear()
        for path in cache_dir().glob("*.trace"):
            path.write_text("not a trace\n", encoding="utf-8")
        rebuilt = cached_trace(key, lambda: small_trace(seed=0))
        assert_traces_equal(rebuilt, small_trace(seed=0))


class TestQuarantine:
    def plant_truncated_entry(self, key):
        """Store a valid entry, then truncate it mid-line on disk."""
        cached_trace(key, small_trace)
        trace_cache._memory.clear()
        (path,) = cache_dir().glob("*.trace")
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2].rsplit(" ", 1)[0],
                        encoding="utf-8")
        return path

    def test_truncated_entry_quarantined_and_rebuilt(self, caplog):
        """The round trip the fault issue asks for: a truncated entry
        must be set aside as *.corrupt (with a warning) and the trace
        rebuilt transparently, bit-identical to a fresh build."""
        key = trace_key("torn", seed=3)
        path = self.plant_truncated_entry(key)
        with caplog.at_level("WARNING", logger="repro.trace.cache"):
            rebuilt = cached_trace(key, lambda: small_trace(seed=3))
        assert_traces_equal(rebuilt, small_trace(seed=3))
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists(), "corrupt entry was not quarantined"
        assert any("quarantined" in rec.message for rec in caplog.records)
        # The rebuilt entry is stored again and loads cleanly from disk.
        trace_cache._memory.clear()
        reloaded = cached_trace(
            key, lambda: pytest.fail("should load from disk"))
        assert_traces_equal(reloaded, small_trace(seed=3))

    def test_repeated_corruption_accumulates_evidence(self):
        key = trace_key("torn-again", seed=4)
        self.plant_truncated_entry(key)
        cached_trace(key, lambda: small_trace(seed=4))
        trace_cache._memory.clear()
        # Corrupt the (rebuilt) entry a second time.
        for path in cache_dir().glob("*.trace"):
            path.write_text("#repro-trace 1\nsection x\ncycle zero\n",
                            encoding="utf-8")
        cached_trace(key, lambda: small_trace(seed=4))
        corrupt = list(cache_dir().glob("*.corrupt"))
        assert len(corrupt) == 1, \
            "second quarantine should overwrite the first for one key"

    def test_clear_cache_removes_quarantined_files(self):
        key = trace_key("torn-clear", seed=5)
        self.plant_truncated_entry(key)
        cached_trace(key, lambda: small_trace(seed=5))
        assert list(cache_dir().glob("*.corrupt"))
        clear_cache()
        assert not any(cache_dir().iterdir())

    def test_missing_entry_is_not_quarantined(self):
        """A plain miss must stay a miss: no *.corrupt files appear."""
        key = trace_key("fresh-miss", seed=6)
        cached_trace(key, lambda: small_trace(seed=6))
        assert not list(cache_dir().glob("*.corrupt"))


class TestEscapeHatch:
    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_ENABLED, "0")
        set_cache_enabled(None)  # defer to the environment
        assert not cache_enabled()
        builds = []

        def build():
            builds.append(True)
            return small_trace()

        key = trace_key("off", seed=0)
        cached_trace(key, build)
        cached_trace(key, build)
        assert len(builds) == 2
        assert not cache_dir().exists()

    def test_set_cache_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv(trace_cache.ENV_ENABLED, "0")
        set_cache_enabled(True)
        assert cache_enabled()
        set_cache_enabled(None)
        assert not cache_enabled()

    def test_cache_dir_honors_env(self, tmp_path):
        assert cache_dir() == tmp_path / "cache"


class TestMetrics:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro.obs import reset_registry
        reset_registry()
        yield
        reset_registry()

    def counts(self):
        from repro.trace import cache_stats
        return cache_stats()

    def test_miss_store_and_hits_are_counted(self):
        key = trace_key("metrics", seed=0)
        cached_trace(key, small_trace)            # miss + store
        cached_trace(key, small_trace)            # memory hit
        trace_cache._memory.clear()
        cached_trace(key, small_trace)            # disk hit
        stats = self.counts()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["memory_hits"] == 1
        assert stats["disk_hits"] == 1
        assert stats["quarantines"] == 0

    def test_quarantine_counted(self):
        key = trace_key("metrics-q", seed=1)
        cached_trace(key, small_trace)
        trace_cache._memory.clear()
        for path in cache_dir().glob("*.trace"):
            path.write_text("garbage\n", encoding="utf-8")
        cached_trace(key, lambda: small_trace(seed=1))
        stats = self.counts()
        assert stats["quarantines"] == 1
        # the rebuild after the quarantine is a miss + store again
        assert stats["misses"] == 2
        assert stats["stores"] == 2

    def test_format_cache_stats_mentions_every_counter(self):
        from repro.trace import format_cache_stats
        key = trace_key("metrics-fmt", seed=2)
        cached_trace(key, small_trace)
        text = format_cache_stats()
        for name in ("memory_hits", "disk_hits", "misses", "stores",
                     "quarantines"):
            assert name + "=" in text

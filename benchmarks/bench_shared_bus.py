"""Section 5.2 / Section 6 text claims about the shared-bus baseline.

* "These speedups are comparable to those achieved in these sections on
  our shared-bus implementation [21]."
* Closing discussion: the shared-bus mapping has no static
  bucket-to-processor distribution problem (the hash table is not
  partitioned), but its centralized task queues are a potential
  bottleneck, and the Tourney poor token-to-bucket distribution "is a
  serious problem even for shared-memory implementations".
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import (simulate, simulate_shared_bus, speedup)

PROCS = [8, 16, 32]


def test_comparable_speedups(benchmark, sections, bases, report):
    def run():
        rows = []
        for trace in sections:
            base = bases[trace.name]
            for p in PROCS:
                mpc = speedup(base, simulate(trace, n_procs=p))
                bus = speedup(base, simulate_shared_bus(trace,
                                                        n_procs=p))
                rows.append([trace.name, p, mpc, bus,
                             f"{mpc / bus:.2f}"])
        return rows

    rows = once(benchmark, run)
    report("shared_bus", format_table(
        ["section", "procs", "MPC", "shared-bus", "MPC/bus"],
        rows,
        title="MPC vs shared-bus speedups (paper: 'comparable')"))

    for name, p, mpc, bus, _ in rows:
        assert 0.45 <= mpc / bus <= 2.2, (name, p)


def test_no_partition_problem_on_shared_memory(benchmark, rubik, bases,
                                               report):
    """The Section 5.2.2 closing point: on shared memory the Rubik
    left-token load balances across processors (no ownership), where
    the MPC's static partitioning leaves processors idle."""
    def run():
        mpc = simulate(rubik, n_procs=16)
        bus = simulate_shared_bus(rubik, n_procs=16)
        from repro.analysis import coefficient_of_variation
        return (coefficient_of_variation(
                    mpc.cycles[0].proc_left_activations),
                coefficient_of_variation(
                    bus.cycles[0].proc_left_activations))

    mpc_cv, bus_cv = once(benchmark, run)
    report("shared_bus_balance",
           f"per-cycle CV of left-token load at 16 procs:\n"
           f"  MPC (static partitions): {mpc_cv:.2f}\n"
           f"  shared bus (dynamic):    {bus_cv:.2f}")
    # Markedly better balanced — though the serial hot bucket still
    # skews whoever serves it, so the CV does not collapse to zero.
    assert bus_cv < 0.8 * mpc_cv
    # And crucially: no idle processors on shared memory.
    bus = simulate_shared_bus(rubik, n_procs=16)
    assert all(c > 0 for c in bus.cycles[0].proc_left_activations)


def test_tourney_hurts_shared_memory_too(benchmark, tourney, bases,
                                         report):
    """Token-to-bucket maldistribution is 'a serious problem even for
    shared-memory implementations': Tourney's shared-bus speedup
    plateaus well below the machine size."""
    def run():
        base = bases["tourney"]
        return [speedup(base, simulate_shared_bus(tourney, n_procs=p))
                for p in PROCS]

    speedups = once(benchmark, run)
    report("shared_bus_tourney", format_table(
        ["procs", "shared-bus speedup"],
        [[p, s] for p, s in zip(PROCS, speedups)],
        title="Tourney on shared memory: the cross-product bucket "
              "still serializes"))
    # Near-total plateau from 16 to 32 processors.
    assert speedups[-1] < 1.15 * speedups[-2]
    assert speedups[-1] < 16


def test_task_queue_bottleneck(benchmark, rubik, bases, report):
    """Centralized task queues are a potential bottleneck: a single
    queue caps the Rubik speedup noticeably below eight queues."""
    def run():
        base = bases["rubik"]
        one = speedup(base, simulate_shared_bus(rubik, n_procs=32,
                                                n_queues=1))
        eight = speedup(base, simulate_shared_bus(rubik, n_procs=32,
                                                  n_queues=8))
        return one, eight

    one, eight = once(benchmark, run)
    report("shared_bus_queue",
           f"Rubik at 32 procs: 1 queue {one:.2f}x vs "
           f"8 queues {eight:.2f}x")
    assert eight > 1.15 * one

"""Engine-level benchmarks: the Python implementation itself.

Unlike the other benches (which regenerate paper figures from simulated
microsecond costs), these time the actual Rete engine against the naive
matcher — the classic justification for Rete's state saving — and the
simulator's throughput.  pytest-benchmark runs these for real.
"""

import pytest

from repro.ops5 import Interpreter, NaiveMatcher, parse_program
from repro.rete import ReteNetwork
from repro.mpc import simulate
from repro.workloads.configurator import configurator_program


def run_configurator(matcher_factory, n_boards=10, n_disks=8):
    interp = Interpreter(matcher=matcher_factory())
    interp.load_program(configurator_program(n_boards, n_disks))
    result = interp.run(max_cycles=1000)
    assert result.halted
    return result.cycles


def test_engine_rete(benchmark):
    cycles = benchmark(run_configurator, ReteNetwork)
    assert cycles > 10


def test_engine_naive(benchmark):
    cycles = benchmark(run_configurator, NaiveMatcher)
    assert cycles > 10


def test_rete_scales_better_than_naive():
    """Incremental match must win asymptotically: growing the working
    memory grows naive's per-cycle cost (full re-match) much faster
    than Rete's (delta processing)."""
    import time

    def measure(matcher_factory, n):
        start = time.perf_counter()
        run_configurator(matcher_factory, n_boards=n, n_disks=n)
        return time.perf_counter() - start

    naive_small = measure(NaiveMatcher, 4)
    naive_big = measure(NaiveMatcher, 16)
    rete_small = measure(ReteNetwork, 4)
    rete_big = measure(ReteNetwork, 16)

    naive_growth = naive_big / naive_small
    rete_growth = rete_big / rete_small
    assert rete_growth < naive_growth, (
        f"rete grew {rete_growth:.1f}x, naive {naive_growth:.1f}x")


def test_simulator_throughput(benchmark, tourney):
    """The trace-driven simulator replays ~10k activations; keep an eye
    on its absolute speed (the paper's simulator took 0.5-6 *hours* per
    run on a SUN 3/260; ours should take well under a second)."""
    result = benchmark(simulate, tourney, 32)
    assert result.total_us > 0
    stats = benchmark.stats.stats
    assert stats.mean < 1.0, "simulation of one run exceeded a second"

"""Figure 5-6: Tourney speedups with copy and constraint.

Paper, Section 5.2.2: the Tourney cross-product node tests no variable,
so all its tokens hash to one bucket and serialize.  Copy-and-constraint
splits the culprit production into copies with distinct node-ids, giving
the hash function discrimination it lacked.  The improvement is real but
modest — footnote 9: the baseline Tourney speedups are somewhat
overestimated (constant-time bucket ops), "therefore, we do not see a
big increase in the speedup".
"""

import pytest

from conftest import once
from repro.analysis import curve_plot, format_table
from repro.mpc import speedup_curve
from repro.trace import copy_and_constraint_trace, validate_trace
from repro.workloads.tourney import CP_NODE

PROCS = [1, 2, 4, 8, 16, 24, 32]
SPLIT = 4


def test_fig5_6(benchmark, tourney, report):
    def run():
        cc = copy_and_constraint_trace(tourney, CP_NODE, SPLIT)
        validate_trace(cc)
        return (speedup_curve(tourney, PROCS, label="tourney"),
                speedup_curve(cc, PROCS, label=f"tourney+cc{SPLIT}"),
                cc)

    baseline, cc_curve, cc = once(benchmark, run)

    rows = [[p, baseline.speedups[i], cc_curve.speedups[i]]
            for i, p in enumerate(PROCS)]
    text = format_table(
        ["procs", "baseline", f"copy-and-constraint (k={SPLIT})"], rows,
        title="Figure 5-6: Tourney speedups with copy and constraint")
    text += "\n\n" + curve_plot(PROCS, [baseline.speedups,
                                        cc_curve.speedups],
                                ["baseline", "copy+constraint"])
    improvement = cc_curve.peak()[1] / baseline.peak()[1]
    text += (f"\n\npeak improvement: {improvement:.2f}x "
             f"(paper: an improvement, but 'not a big increase')")
    report("fig5_6", text)

    # An improvement at scale...
    assert cc_curve.at(32) > baseline.at(32)
    # ...but a modest one — not the multi-fold jump unsharing gives
    # Weaver.
    assert improvement < 1.8
    # No significant loss at any processor count.
    for i in range(len(PROCS)):
        assert cc_curve.speedups[i] >= baseline.speedups[i] - 0.25

    # Work is conserved: copy-and-constraint re-buckets, it does not
    # duplicate activations.
    assert cc.total_activations() == tourney.total_activations()


def test_fig5_6_bucket_discrimination(benchmark, tourney):
    """The mechanism itself: the single hot bucket becomes SPLIT
    buckets of roughly equal traffic."""
    cc = once(benchmark,
              lambda: copy_and_constraint_trace(tourney, CP_NODE, SPLIT))
    cp_cycle = tourney.cycles[2]
    hot_before = {}
    for act in cp_cycle:
        if act.node_id == CP_NODE:
            hot_before[act.key] = hot_before.get(act.key, 0) + 1
    assert len(hot_before) == 1

    replica_counts = {}
    originals = {a.act_id for a in cp_cycle if a.node_id == CP_NODE}
    for act in cc.cycles[2]:
        if act.act_id in originals:
            replica_counts[act.key] = replica_counts.get(act.key, 0) + 1
    assert len(replica_counts) == SPLIT
    counts = sorted(replica_counts.values())
    assert counts[-1] - counts[0] <= 1  # round-robin balance

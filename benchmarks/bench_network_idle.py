"""Section 5.1 text claim: "the interconnection network was mostly
(97-98% time) idle ... explained by the small delay (0.5 us)".

We model the network as a single shared medium (the most pessimistic
accounting — see SimResult.network_utilization), so the bench asserts a
slightly wider idle bound while printing the measured figures.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import TABLE_5_1, simulate

PROCS = 32


def test_network_mostly_idle(benchmark, sections, report):
    def run():
        rows = []
        for trace in sections:
            for overheads in TABLE_5_1[1:]:
                result = simulate(trace, n_procs=PROCS,
                                  overheads=overheads)
                rows.append((trace.name, overheads.label(),
                             result.network_idle_fraction(),
                             result.n_messages))
        return rows

    rows = once(benchmark, run)
    report("network_idle", format_table(
        ["section", "overhead", "network idle", "messages"],
        [[n, o, f"{idle:.1%}", m] for n, o, idle, m in rows],
        title="Network idleness at 0.5us latency, 32 processors "
              "(paper: 97-98% idle)"))

    for name, label, idle, _ in rows:
        assert idle > 0.90, f"{name}@{label}: network only {idle:.1%} idle"
    # The flagship configuration matches the paper's band closely.
    best = max(idle for _, _, idle, _ in rows)
    assert best > 0.97


def test_network_not_a_bottleneck(benchmark, rubik):
    """Doubling the latency at fixed overheads barely moves the result
    — the network is not the constraint (Section 5.1)."""
    def run():
        a = simulate(rubik, n_procs=PROCS, overheads=TABLE_5_1[1])
        from repro.mpc import OverheadModel
        doubled = OverheadModel(send_us=5, recv_us=3, latency_us=1.0)
        b = simulate(rubik, n_procs=PROCS, overheads=doubled)
        return a.total_us, b.total_us

    t_half, t_one = once(benchmark, run)
    assert t_one < 1.02 * t_half

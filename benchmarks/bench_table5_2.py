"""Table 5-2: tokens in the sections of the three programs.

Paper:  Rubik   2388 left (28%)   6114 right (72%)   8502 total
        Tourney 10667 left (99%)    83 right (1%)   10750 total
        Weaver    338 left (81%)    78 right (19%)    416 total

Our synthetic sections must reproduce these counts *exactly* — they are
the inputs every other experiment depends on.
"""

from conftest import once
from repro.analysis import format_table

EXPECTED = {
    "rubik": (2388, 6114, 8502, 28),
    "tourney": (10667, 83, 10750, 99),
    "weaver": (338, 78, 416, 81),
}


def test_table5_2(benchmark, sections, report):
    stats = once(benchmark,
                 lambda: {t.name: t.stats() for t in sections})

    rows = []
    for name in ("rubik", "tourney", "weaver"):
        s = stats[name]
        lf = round(100 * s.left_fraction)
        rows.append([name.capitalize(), f"{s.left} ({lf}%)",
                     f"{s.right} ({100 - lf}%)", s.total])
    report("table5_2", format_table(
        ["Program", "Left activations", "Right activations",
         "Total activations"], rows,
        title="Table 5-2: tokens in the sections of the three programs"))

    for name, (left, right, total, left_pct) in EXPECTED.items():
        s = stats[name]
        assert s.left == left, name
        assert s.right == right, name
        assert s.total == total, name
        assert round(100 * s.left_fraction) == left_pct, name

"""Section 4 (future work): impact of termination-detection schemes.

The paper explicitly does not simulate termination detection and defers
"investigations of the impacts of the various termination detection
schemes on our implementation and the selection of the most suitable
scheme" to future work.  This bench performs that investigation with
the classic schemes priced on the Table 5-1 overheads.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import (TABLE_5_1, TerminationScheme, apply_termination,
                       simulate, speedup, termination_overhead_fraction)

PROCS = 32
OVH = TABLE_5_1[1]


def test_termination_schemes(benchmark, sections, bases, report):
    def run():
        rows = []
        for trace in sections:
            base = bases[trace.name]
            plain = simulate(trace, n_procs=PROCS, overheads=OVH)
            row = [trace.name]
            for scheme in TerminationScheme:
                augmented = apply_termination(plain, scheme, OVH)
                row.append(speedup(base, augmented))
            rows.append(row)
        return rows

    rows = once(benchmark, run)
    report("termination", format_table(
        ["section"] + [s.value for s in TerminationScheme],
        rows,
        title=f"Termination-detection impact at {PROCS} processors, "
              f"{OVH.label()} overheads (speedups)"))

    for row in rows:
        name, ideal, barrier, ring, tree = row
        # Every real scheme costs something; none is catastrophic.
        assert barrier <= ideal and ring <= ideal and tree <= ideal
        assert min(barrier, ring, tree) > 0.75 * ideal, name
        # Ring is the slowest of the three at 32 processors; the tree
        # and the barrier contend for the best spot.
        assert ring <= min(barrier, tree) + 1e-9, name


def test_weaver_suffers_most(benchmark, sections, bases, report):
    """Small cycles amortize detection worst: Weaver's many short
    cycles pay the per-cycle delay over the least work."""
    def run():
        out = {}
        for trace in sections:
            plain = simulate(trace, n_procs=PROCS, overheads=OVH)
            out[trace.name] = termination_overhead_fraction(
                plain, TerminationScheme.RING, OVH)
        return out

    fractions = once(benchmark, run)
    report("termination_fractions",
           "Fraction of section time spent in ring termination "
           "detection\n" +
           "\n".join(f"  {n:<8} {f:.1%}" for n, f in fractions.items()))
    assert fractions["weaver"] > fractions["rubik"]
    assert fractions["weaver"] > fractions["tourney"]

"""Section 6 (future work): the mapping continuum, explored.

The paper: "The mapping presented in this paper may be thought of as
being near the center of a continuum of mappings.  At one extreme, we
have the mapping of hash-tables replicated on all processors...  At
the other extreme is a mapping with a single master-copy of the
hash-table...  we intend to investigate the possibility of moving
toward one or the other end of this continuum."

This bench carries out that investigation with the same cost model:
the distributed hash table must beat both extremes on the
characteristic sections, and the extremes must fail for the reasons
the paper gives (continuous copy updates; owner contention).

It also covers Section 3.2's variation 1: the processor-pair base
mapping versus the merged mapping the simulations used.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import (TABLE_5_1, simulate, simulate_master_copy,
                       simulate_pairs, simulate_replicated, speedup)

PROCS = 16
OVH = TABLE_5_1[1]  # the 8 us Nectar-like setting


def test_continuum(benchmark, sections, bases, report):
    def run():
        rows = []
        for trace in sections:
            base = bases[trace.name]
            distributed = speedup(base, simulate(
                trace, n_procs=PROCS, overheads=OVH))
            replicated = speedup(base, simulate_replicated(
                trace, PROCS, overheads=OVH))
            master = speedup(base, simulate_master_copy(
                trace, PROCS, overheads=OVH))
            rows.append((trace.name, replicated, distributed, master))
        return rows

    rows = once(benchmark, run)
    report("continuum", format_table(
        ["section", "replicated", "distributed (paper)", "master-copy"],
        [list(r) for r in rows],
        title=f"The Section 6 mapping continuum at {PROCS} processors, "
              f"{OVH.label()} overheads"))

    for name, replicated, distributed, master in rows:
        assert distributed > replicated, name
        assert distributed > master, name
        # The extremes collapse below ~2x: replication multiplies the
        # store work by P; the master serializes it.
        assert replicated < 2.0, name
        assert master < 2.5, name


def test_processor_pairs_tradeoff(benchmark, rubik, bases, report):
    """Section 3.2 variation 1: pairs overlap the two micro-tasks but
    cost an intra-pair forward per activation; merged processors use a
    small machine better once overheads are real."""
    base = bases["rubik"]

    def run():
        rows = []
        for n_partitions in (4, 8, 16):
            merged_same_cpus = speedup(base, simulate(
                rubik, n_procs=2 * n_partitions, overheads=OVH))
            paired = speedup(base, simulate_pairs(
                rubik, n_pairs=n_partitions, overheads=OVH))
            merged_same_partitions = speedup(base, simulate(
                rubik, n_procs=n_partitions, overheads=OVH))
            rows.append((n_partitions, merged_same_partitions, paired,
                         merged_same_cpus))
        return rows

    rows = once(benchmark, run)
    report("processor_pairs", format_table(
        ["hash partitions", "merged (P cpus)", "pairs (2P cpus)",
         "merged (2P cpus)"],
        [list(r) for r in rows],
        title="Section 3.2 variation 1: processor pairs vs merged "
              "mapping (Rubik, 8us overheads)"))

    for n_partitions, merged_p, paired, merged_2p in rows:
        # Pairs beat the merged mapping at the same partition count
        # (micro-task overlap)...
        assert paired > merged_p * 0.95
        # ...but the same CPU budget spent on more merged processors is
        # better — the paper's reason for merging on a 32-CPU Nectar.
        assert merged_2p > paired * 0.95


def test_dedicated_constant_test_processors(benchmark, rubik, bases,
                                            report):
    """Section 3.2 variation 2: dedicated constant-node processors are
    fine at zero overheads but 'could become bottlenecks, if the
    communication overheads are comparatively high' — in which case
    'broadcasting wmes to all processors would be preferable'."""
    from repro.mpc import (TABLE_5_1, ZERO_OVERHEADS,
                           simulate_dedicated_alpha)
    base = bases["rubik"]

    def run():
        rows = []
        for label, overheads in [("0us", ZERO_OVERHEADS),
                                 ("8us", TABLE_5_1[1]),
                                 ("32us", TABLE_5_1[3])]:
            broadcast = speedup(base, simulate(rubik, 16,
                                               overheads=overheads))
            dedicated = speedup(base, simulate_dedicated_alpha(
                rubik, 16, n_const_procs=2, overheads=overheads))
            rows.append([label, broadcast, dedicated])
        return rows

    rows = once(benchmark, run)
    report("dedicated_alpha", format_table(
        ["overhead", "broadcast (paper's variant)",
         "2 dedicated const-test procs"],
        rows,
        title="Section 3.2 variation 2 on Rubik, 16 match processors"))

    zero, mid, high = rows
    assert zero[2] >= zero[1] * 0.95       # fine without overheads
    assert high[1] > 1.3 * high[2]         # bottleneck at 32us

"""Figure 5-5: distribution of tokens in two independent cycles (Rubik).

Paper: at the level of an individual MRA cycle the distribution of left
tokens over processors is quite uneven, and processors busy in one cycle
are idle in the next (and vice versa) — e.g. processor 1 processed ~20
tokens in *both* cycles while most others alternated.  The aggregate
over the section's cycles is "more or less even".
"""

import pytest

from conftest import once
from repro.analysis import (aggregate, alternation_score, bar_chart,
                            coefficient_of_variation)
from repro.mpc import simulate
from repro.workloads.rubik import FIG_5_5_PROCS


def test_fig5_5(benchmark, rubik, report):
    run = once(benchmark,
               lambda: simulate(rubik, n_procs=FIG_5_5_PROCS))

    cycle1 = run.cycles[0].proc_left_activations
    cycle2 = run.cycles[1].proc_left_activations
    labels = [f"p{p}" for p in range(FIG_5_5_PROCS)]

    text = "Figure 5-5: left-token distribution, Rubik, " \
           f"{FIG_5_5_PROCS} processors\n\n"
    text += bar_chart(cycle1, labels, title="cycle 1") + "\n\n"
    text += bar_chart(cycle2, labels, title="cycle 2") + "\n\n"
    text += bar_chart(aggregate([c.proc_left_activations
                                 for c in run.cycles]),
                      labels, title="aggregate over the section")
    text += (f"\n\nalternation score (anti-correlation of cycles 1-2): "
             f"{alternation_score(cycle1, cycle2):.2f}")
    report("fig5_5", text)

    # Within a cycle: quite uneven.
    assert coefficient_of_variation(cycle1) > 0.5
    assert coefficient_of_variation(cycle2) > 0.5

    # Busy in one cycle, idle in the next: positive anti-correlation,
    # and several processors swap between (near-)idle and busy.
    assert alternation_score(cycle1, cycle2) > 0.0
    swapped = sum(1 for a, b in zip(cycle1, cycle2)
                  if (a == 0) != (b == 0))
    assert swapped >= FIG_5_5_PROCS // 3

    # At least one processor is busy in BOTH cycles (the paper's
    # "processor number 1 processed ~20 tokens in both cycles").
    assert any(a > 10 and b > 10 for a, b in zip(cycle1, cycle2))

    # The aggregate over the whole section is "more or less even" —
    # markedly less skewed than any individual cycle.
    total = aggregate([c.proc_left_activations for c in run.cycles])
    assert coefficient_of_variation(total) < \
        0.8 * min(coefficient_of_variation(cycle1),
                  coefficient_of_variation(cycle2))
    assert all(t > 0 for t in total)  # nobody idle across the section

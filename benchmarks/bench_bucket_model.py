"""Section 5.2.2's probabilistic model of active-bucket distribution —
the three conclusions, with numbers.

1. P(completely even) and P(totally uneven) are both very low (<1%);
   typical distributions are in between.
2. More active buckets (same processors) → more even distributions —
   why the numerous right buckets spread well.
3. More processors → more uneven distributions — part of why speedups
   do not scale.
"""

import pytest

from conftest import once
from repro.analysis import (BucketModel, format_table, imbalance_factor,
                            prob_all_on_one, prob_perfectly_even)


def test_conclusion_1_extremes_rare(benchmark, report):
    model = BucketModel(active_buckets=96, processors=16)
    p_even, p_one = once(benchmark,
                         lambda: (model.p_even(), model.p_all_on_one()))
    report("bucket_model_c1",
           f"96 active buckets on 16 processors:\n"
           f"  P(perfectly even)  = {p_even:.2e}\n"
           f"  P(all on one proc) = {p_one:.2e}\n"
           f"(paper: both < 1%; the typical outcome is in between)")
    assert p_even < 0.01
    assert p_one < 0.01


def test_conclusion_2_more_active_buckets_more_even(benchmark, report):
    counts = [32, 64, 128, 256, 512, 1024]
    factors = once(benchmark,
                   lambda: [imbalance_factor(m, 16, trials=4000)
                            for m in counts])
    report("bucket_model_c2", format_table(
        ["active buckets", "E[max load] / even share"],
        [[m, f] for m, f in zip(counts, factors)],
        title="Conclusion 2: more active buckets -> more even "
              "(16 processors)"))
    # Strictly improving towards 1.0 along the sweep.
    for a, b in zip(factors, factors[1:]):
        assert b < a
    assert factors[-1] < 1.25


def test_conclusion_3_more_processors_more_uneven(benchmark, report):
    procs = [2, 4, 8, 16, 32]
    factors = once(benchmark,
                   lambda: [imbalance_factor(128, p, trials=4000)
                            for p in procs])
    report("bucket_model_c3", format_table(
        ["processors", "E[max load] / even share"],
        [[p, f] for p, f in zip(procs, factors)],
        title="Conclusion 3: more processors -> more uneven "
              "(128 active buckets)"))
    for a, b in zip(factors, factors[1:]):
        assert b > a
    # The probability of a distribution allowing near-linear speedup
    # falls with the processor count.
    assert prob_perfectly_even(128, 2) > prob_perfectly_even(128, 32)


def test_model_against_simulated_right_buckets(benchmark, rubik, report):
    """The model's explanation for the paper's observation that right
    buckets spread evenly: there are many of them.  Check against the
    actual simulated distribution of the Rubik section."""
    from repro.analysis import coefficient_of_variation
    from repro.mpc import simulate

    def run():
        result = simulate(rubik, n_procs=16)
        right_cv = []
        left_cv = []
        for c in result.cycles:
            rights = [t - l for t, l in zip(c.proc_activations,
                                            c.proc_left_activations)]
            right_cv.append(coefficient_of_variation(rights))
            left_cv.append(coefficient_of_variation(
                c.proc_left_activations))
        return (sum(right_cv) / len(right_cv),
                sum(left_cv) / len(left_cv))

    right_cv, left_cv = once(benchmark, run)
    report("bucket_model_vs_sim",
           f"Rubik on 16 procs, mean per-cycle CV of loads:\n"
           f"  right activations: {right_cv:.2f}  (many active buckets)\n"
           f"  left activations:  {left_cv:.2f}  (few active buckets)")
    assert right_cv < left_cv

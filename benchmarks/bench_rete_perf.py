"""Match-kernel performance: flattened kernel vs the reference engine.

Replays the recorded rubik/tourney/weaver delta scripts (see
:mod:`repro.workloads.match`) into the preserved object-dispatch engine
and the flattened kernel (numpy on and off), and times the CORGI-style
adversarial cross-product at two sizes to confirm cost stays quadratic
in token count.  Every timed pair also cross-checks final conflict
sets, so a kernel that got fast by getting wrong fails here before it
fails anywhere else.

Results are written machine-readably to ``BENCH_rete.json`` at the repo
root so the match-throughput trajectory is tracked across PRs.  Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_rete_perf.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

from conftest import once
from repro.rete import ReferenceReteNetwork, ReteNetwork, resolve_numpy
from repro.workloads import (adversarial_cross_product,
                             record_match_deltas, replay_deltas,
                             rubik_match_program, tourney_match_program,
                             weaver_match_program)

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_rete.json"

#: Scaled-up workload shapes: enough waves that per-replay timing noise
#: stays well under the asserted ratios.
WORKLOADS = {
    "rubik": lambda: rubik_match_program(seed=0, n_moves=200),
    "tourney": lambda: tourney_match_program(seed=0, n_players=24,
                                             n_rounds=150),
    "weaver": lambda: weaver_match_program(seed=0, n_tasks=60,
                                           n_resources=7),
}

#: The tentpole acceptance bar: the kernel must at least double rubik
#: match throughput over the reference engine.
RUBIK_MIN_SPEEDUP = 2.0

#: n -> 2n wall-time ratio bound for the adversarial cross-product.
#: The workload is Theta(n^2), so the ideal ratio is 4; the bound
#: leaves headroom for constant factors without admitting an O(n^3)
#: regression (ratio 8).
ADVERSARIAL_MAX_RATIO = 6.0


def _merge_results(update: dict) -> dict:
    """Merge *update* into ``BENCH_rete.json`` (section-wise), so the
    file survives running any one benchmark test alone."""
    results = {}
    if BENCH_JSON.exists():
        results = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    results.update(update)
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n",
                          encoding="utf-8")
    return results


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall time of *fn* over *repeats* runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _signature(conflict_set):
    return sorted((inst.production.name,
                   tuple(w.wme_id for w in inst.wmes))
                  for inst in conflict_set)


def _time_replays(factories, script, repeats: int = 5):
    """Best replay seconds and final conflict signature per factory.

    The engines are timed round-robin (ref, fast, ... ref, fast, ...)
    rather than back to back, so drifting machine load lands on every
    engine about equally and the *ratios* stay stable even when the
    absolute timings wobble.
    """
    best = [float("inf")] * len(factories)
    signatures = [None] * len(factories)
    for _ in range(repeats):
        for i, factory in enumerate(factories):
            matcher = factory()
            start = time.perf_counter()
            conflict_set = replay_deltas(matcher, script.program,
                                         script.deltas)
            best[i] = min(best[i], time.perf_counter() - start)
            signatures[i] = _signature(conflict_set)
    return best, signatures


def _machine() -> dict:
    return {"cpus": os.cpu_count(), "platform": platform.platform(),
            "python": platform.python_version()}


def test_match_throughput(benchmark, report):
    numpy_available = resolve_numpy(True) is not None
    results = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "machine": _machine(),
        "numpy_available": numpy_available,
    }
    lines = ["Rete match throughput: flattened kernel vs reference",
             f"{'workload':<9} {'waves':>6} {'ref':>9} {'fast':>9} "
             f"{'speedup':>8} {'no-numpy':>9} {'speedup':>8}"]

    def _measure():
        throughput = {}
        for name, make_source in WORKLOADS.items():
            script = record_match_deltas(make_source())
            assert script.halted, f"{name} did not halt"
            waves = script.wave_count()
            (ref_s, fast_s, plain_s), (ref_sig, fast_sig, plain_sig) = \
                _time_replays((ReferenceReteNetwork, ReteNetwork,
                               lambda: ReteNetwork(use_numpy=False)),
                              script)
            assert fast_sig == ref_sig, f"{name}: fast diverged"
            assert plain_sig == ref_sig, f"{name}: no-numpy diverged"
            probe = ReteNetwork()
            replay_deltas(probe, script.program, script.deltas)
            throughput[name] = {
                "waves": waves,
                "cycles": script.cycles,
                "reference_s": round(ref_s, 5),
                "fast_s": round(fast_s, 5),
                "fast_no_numpy_s": round(plain_s, 5),
                "speedup": round(ref_s / fast_s, 2),
                "speedup_no_numpy": round(ref_s / plain_s, 2),
                "fast_waves_per_s": round(waves / fast_s),
                "reference_waves_per_s": round(waves / ref_s),
                "numpy_engaged": probe.kernel.numpy_engaged,
            }
            row = throughput[name]
            lines.append(
                f"{name:<9} {waves:>6} {ref_s * 1e3:>7.1f}ms "
                f"{fast_s * 1e3:>7.1f}ms {row['speedup']:>7.2f}x "
                f"{plain_s * 1e3:>7.1f}ms "
                f"{row['speedup_no_numpy']:>7.2f}x")
        return throughput

    throughput = once(benchmark, _measure)
    results["match_throughput"] = throughput
    _merge_results(results)
    report("bench_rete_throughput", "\n".join(lines))

    rubik = throughput["rubik"]
    assert rubik["numpy_engaged"] == numpy_available
    assert rubik["speedup"] >= RUBIK_MIN_SPEEDUP, (
        f"rubik match speedup {rubik['speedup']}x is below the "
        f"{RUBIK_MIN_SPEEDUP}x acceptance bar")


def test_adversarial_cross_product_stays_quadratic(benchmark, report):
    n = 48

    def _time_case(size):
        program, deltas = adversarial_cross_product(size)

        def _replay():
            matcher = ReteNetwork()
            conflict_set = replay_deltas(matcher, program, deltas)
            assert conflict_set == []
            assert matcher.memories.is_empty()

        return _best_of(_replay)

    def _measure():
        small_s = _time_case(n)
        big_s = _time_case(2 * n)
        return {"n": n,
                "small_s": round(small_s, 5),
                "big_s": round(big_s, 5),
                "time_ratio_2n_over_n": round(big_s / small_s, 2)}

    adversarial = once(benchmark, _measure)
    _merge_results({"adversarial_cross_product": adversarial})
    report("bench_rete_adversarial",
           "Adversarial cross-product (all wmes share one join key)\n"
           f"n={n}: {adversarial['small_s'] * 1e3:.1f}ms   "
           f"n={2 * n}: {adversarial['big_s'] * 1e3:.1f}ms   "
           f"ratio {adversarial['time_ratio_2n_over_n']:.2f} "
           f"(quadratic ideal 4.0, bound {ADVERSARIAL_MAX_RATIO})")

    ratio = adversarial["time_ratio_2n_over_n"]
    assert ratio <= ADVERSARIAL_MAX_RATIO, (
        f"cross-product time ratio {ratio} for n -> 2n exceeds "
        f"{ADVERSARIAL_MAX_RATIO}: match cost is no longer quadratic "
        f"in token count")

"""Fault sweep: speedup degradation vs message-loss rate.

An analysis axis the paper could not explore: its simulation assumes a
perfect Nectar-class network.  With the ack/retransmit protocol layer
(`repro.mpc.faults`) priced into the Table 5-1 overhead settings, we
sweep the per-message loss rate over the Fig 5-1 workloads and record
how much of the paper's speedup survives.

Expected shape:

* The loss-0 anchor is bit-identical to the fault-free simulator (the
  zero-fault configuration takes the exact fault-free code path).
* The first nonzero loss rate pays the protocol's fixed price — one
  ack per message — visible as a step down from the anchor.
* Speedup degrades monotonically as the loss rate grows (retransmit
  sends plus timeout waits), and the whole curve is reproducible
  bit-for-bit under the same seed.
"""

from conftest import once
from repro.mpc import (TABLE_5_1, fault_sweep, format_degradation,
                       simulate, speedup)

LOSS_RATES = [0.0, 1e-4, 1e-3, 1e-2]
N_PROCS = 16
OVERHEADS = TABLE_5_1[1]  # Run 2: 5+3 us, the moderate Nectar setting
SEED = 0


def compute_curves(sections, workers):
    return [fault_sweep(trace, n_procs=N_PROCS, loss_rates=LOSS_RATES,
                        overheads=OVERHEADS, seed=SEED, workers=workers)
            for trace in sections]


def test_fault_sweep(benchmark, sections, bases, report, workers):
    curves = once(benchmark, lambda: compute_curves(sections, workers))

    text = "\n\n".join(
        format_degradation(
            curve,
            title=f"{curve.label}, overheads {OVERHEADS.label()}, "
                  f"seed {SEED}")
        for curve in curves)
    report("fault_sweep", text)

    by_name = {c.label.split("@")[0]: c for c in curves}
    rubik = by_name["rubik"]

    # The degradation curve is monotone: more loss never helps.
    for curve in curves:
        assert curve.is_monotone(), f"{curve.label} not monotone"

    # The loss-0 anchor is the fault-free simulator, bit for bit.
    base = bases["rubik"]
    fault_free = simulate(sections[0], n_procs=N_PROCS,
                          overheads=OVERHEADS)
    assert rubik.speedups[0] == speedup(base, fault_free)
    assert rubik.results[0].cycles == fault_free.cycles
    assert rubik.results[0].retransmits == 0

    # Reliability is not free: the protocol's ack machinery costs
    # measurable speedup even at the lowest loss rate...
    assert rubik.speedups[1] < rubik.speedups[0]
    # ...and at 1% loss the retransmit counters are visibly nonzero.
    assert rubik.results[-1].retransmits > 0
    assert rubik.results[-1].timeout_wait_us > 0

    # Same seed => bit-identical rerun (counter-based determinism).
    rerun = fault_sweep(sections[0], n_procs=N_PROCS,
                        loss_rates=LOSS_RATES, overheads=OVERHEADS,
                        seed=SEED, workers=workers)
    assert rerun.speedups == rubik.speedups
    for a, b in zip(rerun.results, rubik.results):
        assert a.cycles == b.cycles


def test_fault_sweep_seed_sensitivity(rubik, report):
    """Different seeds lose *different* messages but the same order of
    magnitude of them — the curve's shape is a property of the loss
    rate, not of one lucky seed."""
    curves = [fault_sweep(rubik, n_procs=N_PROCS, loss_rates=[1e-2],
                          overheads=OVERHEADS, seed=seed, workers=1)
              for seed in range(3)]
    retx = [c.results[0].retransmits for c in curves]
    assert len(set(retx)) > 1 or retx[0] > 0
    for c in curves:
        assert c.speedups[0] < 8.5  # all degraded below the anchor

"""Figure 5-2: speedups with varying overheads — Rubik (top), Tourney
(middle), Weaver (bottom).

Paper: each section is swept over 1..32 processors at the four Table 5-1
overhead settings (latency fixed at 0.5 us).  The impact of the heaviest
setting (32 us total) is a loss of ~30% of the zero-overhead speedup for
Rubik, ~45% for Tourney, and up to ~50% for Weaver — ordered by each
section's fraction of *left* activations (only left activations travel
as messages; Table 5-2).
"""

import pytest

from conftest import once
from repro.analysis import curve_plot, format_table
from repro.mpc import overhead_sweep, speedup_loss

PROCS = [1, 2, 4, 8, 16, 24, 32]

#: Paper-quoted peak-speedup losses at the 32 us setting, with the
#: tolerance bands we accept from a reconstructed trace.
LOSS_BANDS = {
    "rubik": (0.30, 0.15, 0.45),    # quoted, accepted low, accepted high
    "tourney": (0.45, 0.33, 0.58),
    "weaver": (0.50, 0.35, 0.60),
}


@pytest.mark.parametrize("section_name", ["rubik", "tourney", "weaver"])
def test_fig5_2(benchmark, sections, report, section_name):
    trace = next(t for t in sections if t.name == section_name)

    curves = once(benchmark,
                  lambda: overhead_sweep(trace, proc_counts=PROCS))

    labels = [f"{c.label.split('@')[1]}" for c in curves]
    rows = [[p] + [c.speedups[i] for c in curves]
            for i, p in enumerate(PROCS)]
    text = format_table(
        ["procs"] + labels, rows,
        title=f"Figure 5-2 ({section_name}): speedups with varying "
              f"overheads")
    text += "\n\n" + curve_plot(PROCS, [c.speedups for c in curves],
                                labels)
    loss = speedup_loss(curves[0], curves[3])
    quoted, lo, hi = LOSS_BANDS[section_name]
    text += (f"\n\npeak-speedup loss at 32us total overhead: "
             f"{loss:.0%}   (paper: ~{quoted:.0%})")
    report(f"fig5_2_{section_name}", text)

    # More overhead, less speedup — monotone across the four settings
    # at the full machine size.
    at32 = [c.at(32) for c in curves]
    assert at32 == sorted(at32, reverse=True)

    # The loss band.
    assert lo <= loss <= hi, (
        f"{section_name}: loss {loss:.0%} outside [{lo:.0%}, {hi:.0%}]")


def test_fig5_2_losses_ordered_by_left_fraction(benchmark, sections,
                                                report):
    """Rubik (28% left) loses least; Tourney (99%) and Weaver (81%) lose
    much more — the paper's Table 5-2 explanation of Figure 5-2."""
    def losses():
        out = {}
        for trace in sections:
            curves = overhead_sweep(trace, proc_counts=PROCS)
            out[trace.name] = speedup_loss(curves[0], curves[3])
        return out

    result = once(benchmark, losses)
    report("fig5_2_losses",
           "Peak-speedup loss at 32us overhead vs zero overhead\n" +
           "\n".join(f"  {name:<8} {loss:.0%}"
                     for name, loss in result.items()))
    assert result["rubik"] < result["tourney"]
    assert result["rubik"] < result["weaver"]

"""Figures 5-3 and 5-4: unsharing the Rete network — Weaver speedups.

Paper, Section 5.2.1: in Weaver's small cycles, three left activations
generate 120 of ~150 activations; the generating site is a bottleneck
(16 us per successor).  Unsharing the node (Figure 5-3) lets each output
branch generate its successors independently; Figure 5-4 shows "a
substantial improvement" in the Weaver speedups.

The transformation duplicates some work ("this duplication should not be
a problem"), which the bench also verifies is bounded.
"""

import pytest

from conftest import once
from repro.analysis import curve_plot, format_table
from repro.mpc import speedup_curve
from repro.trace import unshare_trace, validate_trace
from repro.workloads.weaver import HOT_NODE

PROCS = [1, 2, 4, 8, 16, 24, 32]


def test_fig5_4(benchmark, weaver, report):
    def run():
        unshared = unshare_trace(weaver, node_ids=[HOT_NODE])
        validate_trace(unshared)
        return (speedup_curve(weaver, PROCS, label="weaver"),
                speedup_curve(unshared, PROCS, label="weaver+unshare"),
                unshared)

    baseline, unshared_curve, unshared = once(benchmark, run)

    rows = [[p, baseline.speedups[i], unshared_curve.speedups[i]]
            for i, p in enumerate(PROCS)]
    text = format_table(["procs", "shared (baseline)", "unshared"],
                        rows,
                        title="Figure 5-4: Weaver speedups with "
                              "unsharing")
    text += "\n\n" + curve_plot(
        PROCS, [baseline.speedups, unshared_curve.speedups],
        ["shared", "unshared"])
    improvement = unshared_curve.peak()[1] / baseline.peak()[1]
    text += f"\n\npeak improvement: {improvement:.2f}x (paper: substantial)"
    report("fig5_4", text)

    # Substantial improvement at scale...
    assert unshared_curve.at(16) > 1.2 * baseline.at(16)
    assert unshared_curve.at(32) > 1.2 * baseline.at(32)
    # ...and no loss anywhere.
    for i in range(len(PROCS)):
        assert unshared_curve.speedups[i] >= baseline.speedups[i] - 0.05

    # Duplicated work is bounded: the unshared trace grows by at most
    # the paper's 1.1-1.6x sharing factor band (we allow up to 1.6x).
    grow = unshared.total_activations() / weaver.total_activations()
    assert 1.0 <= grow <= 1.6


def test_fig5_3_unsharing_splits_generation(benchmark, weaver):
    """Figure 5-3's structural effect: after unsharing, no single hot
    activation generates the full 40-successor fan-out."""
    unshared = once(benchmark,
                    lambda: unshare_trace(weaver, node_ids=[HOT_NODE]))
    heavy_before = weaver.cycles[1]
    heavy_after = unshared.cycles[1]
    max_before = max(a.n_successors for a in heavy_before)
    max_after = max(a.n_successors for a in heavy_after)
    assert max_before == 40
    assert max_after <= max_before / 2

"""Figure 5-1: speedups with zero message-passing overheads.

Paper: all three sections sweep 1..32 processors with zero network
latency and zero message-processing overhead, round-robin buckets.
Rubik shows the largest overall speedup; the curves exhibit *dips*
(speedup decreasing as processors increase) caused by unlucky bucket
distribution; peaks fall in the 8-12-fold band quoted in Section 5.2.
"""

import pytest

from conftest import once
from repro.analysis import curve_plot, format_table
from repro.mpc import (ZERO_OVERHEADS, simulate, speedup, speedup_curve)

PROCS = [1, 2, 4, 8, 12, 16, 20, 24, 28, 32]
FINE_PROCS = list(range(1, 33))


def compute_curves(sections):
    return [speedup_curve(t, PROCS, overheads=ZERO_OVERHEADS,
                          label=t.name) for t in sections]


def test_fig5_1(benchmark, sections, bases, report):
    curves = once(benchmark, lambda: compute_curves(sections))

    rows = [[p] + [c.speedups[i] for c in curves]
            for i, p in enumerate(PROCS)]
    text = format_table(
        ["procs"] + [c.label for c in curves], rows,
        title="Figure 5-1: speedups with zero message-passing overheads")
    text += "\n\n" + curve_plot(PROCS, [c.speedups for c in curves],
                                [c.label for c in curves])
    report("fig5_1", text)

    by_name = {c.label: c for c in curves}

    # Rubik has the largest overall speedup of the three sections.
    assert by_name["rubik"].peak()[1] > by_name["tourney"].peak()[1]
    assert by_name["rubik"].peak()[1] > by_name["weaver"].peak()[1]

    # "Up to 8-12 fold speedups are available in the three sections":
    # the best section peaks in (or above) that band, every section
    # reaches a useful multiple, none exceeds the processor count.
    best = max(c.peak()[1] for c in curves)
    assert 8.0 <= best <= 14.0
    for c in curves:
        assert c.peak()[1] >= 4.0
        for p, s in zip(c.proc_counts, c.speedups):
            assert s <= p + 1e-9

    # Speedups grow overall from 1 to 32 processors.
    for c in curves:
        assert c.at(32) > c.at(4)


def test_fig5_1_dips_exist(benchmark, rubik, bases):
    """The paper highlights *decreases* in speedup with *increases* in
    processor count (uneven distribution of the hash-table partitions).
    A fine-grained sweep must show at least one dip."""
    base = bases["rubik"]

    def fine_curve():
        return [speedup(base, simulate(rubik, n_procs=p)) for p in
                FINE_PROCS]

    speedups = once(benchmark, fine_curve)
    dips = [p for p in range(1, len(speedups))
            if speedups[p] < speedups[p - 1] - 1e-6]
    assert dips, "expected at least one dip in the fine-grained curve"

"""Table 5-1: breakdown of message-processing overheads into send and
receive times.

A parameter table — the bench verifies our OverheadModel instances
reproduce it exactly and regenerates the printed rows.
"""

from conftest import once
from repro.analysis import format_table
from repro.mpc import TABLE_5_1, table_5_1_rows


def test_table5_1(benchmark, report):
    rows = once(benchmark, table_5_1_rows)
    text = format_table(
        ["Runs", "Send overhead (us)", "Receive overhead (us)",
         "Total overhead (us)"],
        rows,
        title="Table 5-1: message-processing overheads")
    report("table5_1", text)

    assert rows == [
        ("Run 1", 0.0, 0.0, 0.0),
        ("Run 2", 5.0, 3.0, 8.0),
        ("Run 3", 10.0, 6.0, 16.0),
        ("Run 4", 20.0, 12.0, 32.0),
    ]
    # The interconnection network latency is the Nectar group's 0.5 us
    # in every run of the paper.
    assert all(m.latency_us == 0.5 for m in TABLE_5_1)

"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper:
it computes the same rows/series, prints them (and writes them under
``benchmarks/out/``), asserts the qualitative shape the paper reports,
and wraps the core computation in pytest-benchmark so

    pytest benchmarks/ --benchmark-only

also measures the harness itself.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.mpc import simulate_base
from repro.workloads import rubik_section, tourney_section, weaver_section

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--workers", type=int, default=1,
        help="worker processes for sweep-based benchmarks (1 = serial, "
             "the default, so timings stay comparable across runs; "
             "N fans sweep grids out over N processes)")


@pytest.fixture(scope="session")
def workers(request):
    """The --workers knob, threaded into sweep entry points."""
    return request.config.getoption("--workers")


@pytest.fixture(scope="session")
def rubik():
    return rubik_section()


@pytest.fixture(scope="session")
def tourney():
    return tourney_section()


@pytest.fixture(scope="session")
def weaver():
    return weaver_section()


@pytest.fixture(scope="session")
def sections(rubik, tourney, weaver):
    return [rubik, tourney, weaver]


@pytest.fixture(scope="session")
def bases(sections):
    """Base-case (1 processor, zero overhead) results keyed by name."""
    return {t.name: simulate_base(t) for t in sections}


@pytest.fixture(scope="session")
def report():
    """Callable saving a figure/table reproduction as text and printing
    it (visible with ``pytest -s``; always persisted under out/)."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{'=' * 72}\n{text}\n[saved to {path}]")
        return text

    return _save


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark (the simulations are
    deterministic; repeated rounds would only re-measure the same work)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Section 5.2.2 text claims about bucket distribution:

* A *random* distribution of buckets "failed to provide a significant
  improvement" over round robin.
* The offline greedy distribution (fed each cycle's per-bucket activity
  — information a real system would not have) "improved the speedups by
  a factor of 1.4", bounding what better static distribution could buy.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import (BucketWorkCache, GreedyMappingFactory,
                       RandomMapping, RunConfig, simulate, simulate_base,
                       simulate_config, speedup)

PROCS = [16, 32]


def run_strategies(trace, base):
    rows = []
    # One shared cache: each cycle's bucket activity is priced once,
    # not once per processor count.
    work_cache = BucketWorkCache()
    for n_procs in PROCS:
        rr = simulate(trace, n_procs=n_procs)
        rnd = simulate_config(trace, RunConfig(
            n_procs=n_procs,
            mapping=RandomMapping(n_procs=n_procs, seed=1)))
        greedy = simulate_config(trace, RunConfig(
            n_procs=n_procs,
            mapping_factory=GreedyMappingFactory(n_procs,
                                                 work_cache=work_cache)))
        rows.append((n_procs, speedup(base, rr), speedup(base, rnd),
                     speedup(base, greedy), rr.total_us / greedy.total_us))
    return rows


@pytest.mark.parametrize("section_name", ["rubik", "tourney"])
def test_greedy_distribution(benchmark, sections, bases, report,
                             section_name):
    trace = next(t for t in sections if t.name == section_name)
    rows = once(benchmark,
                lambda: run_strategies(trace, bases[section_name]))

    report(f"greedy_{section_name}", format_table(
        ["procs", "round-robin", "random", "greedy (per-cycle)",
         "greedy/rr"],
        [[p, rr, rnd, gr, f"{imp:.2f}x"]
         for p, rr, rnd, gr, imp in rows],
        title=f"Bucket distribution strategies on {section_name} "
              f"(paper: greedy ~1.4x, random ~no improvement)"))

    for n_procs, rr, rnd, gr, improvement in rows:
        # Random is not a significant improvement over round robin.
        assert rnd < 1.15 * rr, \
            f"random unexpectedly beat round robin at {n_procs} procs"
        # Greedy helps substantially, in the neighbourhood of the
        # paper's 1.4x (we accept a band: the traces are reconstructed).
        assert 1.1 <= improvement <= 2.2, (
            f"{section_name}@{n_procs}: greedy improvement "
            f"{improvement:.2f}x outside [1.1, 2.2]")


def test_greedy_mean_improvement_near_paper(benchmark, sections, bases,
                                            report):
    """Averaged over sections and machine sizes, the greedy improvement
    lands near the paper's 1.4x figure."""
    def mean_improvement():
        imps = []
        for trace in sections:
            if trace.name == "weaver":
                continue  # the paper's 1.4x discussion covers the
                # bucket-bound sections; Weaver is generation-bound
            for _, _, _, _, imp in run_strategies(trace,
                                                  bases[trace.name]):
                imps.append(imp)
        return sum(imps) / len(imps)

    mean_imp = once(benchmark, mean_improvement)
    report("greedy_mean",
           f"mean greedy improvement over round robin: {mean_imp:.2f}x "
           f"(paper: 1.4x)")
    assert 1.2 <= mean_imp <= 1.9

"""Footnotes 6 and 9: the constant-time bucket assumption, priced.

Footnote 6: "The speedups for Tourney are somewhat overestimated.  Due
to the poor hashing discrimination, a large number of tokens hash to a
few buckets.  Token deletion therefore requires more time to search
through these buckets than the constant time assumed by the simulator."

Footnote 9 then blames that overestimation for the modest
copy-and-constraint gain in Figure 5-6.

This bench turns both footnotes into measurements by enabling the
per-entry deletion-search surcharge (``CostModel.delete_search_us``):

* the Tourney baseline speedup falls as the surcharge grows — the
  quantified version of "overestimated";
* under honest costs, splitting only the cross-product node recovers
  almost nothing (the downstream overloaded buckets now dominate) —
  footnote 9's observation, reproduced mechanically;
* extending copy-and-constraint to the downstream nodes as well
  recovers a large gain — the remedy the footnotes point toward.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import CostModel, simulate, simulate_base, speedup
from repro.trace import copy_and_constraint_trace, validate_trace
from repro.workloads.tourney import CP_NODE, STAGE2_NODES

PROCS = 32
SPLIT = 4


def test_footnote_6_deletion_search(benchmark, tourney, report):
    """Baseline Tourney speedup falls once deletion search is priced."""
    surcharges = [0.0, 0.5, 1.0, 2.0]

    def run():
        out = []
        for search in surcharges:
            costs = CostModel(delete_search_us=search)
            base = simulate_base(tourney, costs=costs)
            out.append(speedup(base, simulate(tourney, PROCS,
                                              costs=costs)))
        return out

    speedups = once(benchmark, run)
    report("footnote6", format_table(
        ["delete search (us/entry)", "Tourney speedup @32"],
        [[s, v] for s, v in zip(surcharges, speedups)],
        title="Footnote 6: constant-time deletes overestimate Tourney"))
    # The overestimate unwinds as the surcharge grows.  (Tiny
    # surcharges can nudge the ratio either way — T1 absorbs the full
    # search bill while only part of it sits on the parallel critical
    # path — so the assertion is on the trend, not strict monotonicity.)
    assert speedups[-1] < 0.8 * speedups[0]
    assert speedups[-1] == min(speedups)
    for s in speedups[1:]:
        assert s < 1.05 * speedups[0]


def test_footnote_9_cc_gain_under_honest_costs(benchmark, tourney,
                                               report):
    """With deletion search priced, splitting only the cross-product
    node yields almost no gain (footnote 9); splitting the downstream
    stage as well recovers it."""
    costs = CostModel(delete_search_us=1.0)

    def run():
        base = simulate_base(tourney, costs=costs)
        baseline = speedup(base, simulate(tourney, PROCS, costs=costs))
        cc = copy_and_constraint_trace(tourney, CP_NODE, SPLIT)
        cc_only = speedup(base, simulate(cc, PROCS, costs=costs))
        full = cc
        for node in range(60, 60 + STAGE2_NODES):
            full = copy_and_constraint_trace(full, node, SPLIT)
        validate_trace(full)
        cc_full = speedup(base, simulate(full, PROCS, costs=costs))
        return baseline, cc_only, cc_full

    baseline, cc_only, cc_full = once(benchmark, run)
    report("footnote9", format_table(
        ["variant", "speedup @32"],
        [["baseline (search priced)", baseline],
         [f"c&c on cross-product node only (k={SPLIT})", cc_only],
         [f"c&c on cross-product + downstream (k={SPLIT})", cc_full]],
        title="Footnote 9: why Figure 5-6's gain is modest, and the fix"))

    # Footnote 9's shape: the cp-only gain nearly vanishes...
    assert cc_only < 1.15 * baseline
    # ...while the extended transformation is a substantial win.
    assert cc_full > 1.5 * baseline


def test_other_sections_insensitive_to_search_costs(benchmark, rubik,
                                                    weaver, report):
    """Rubik and Weaver hash well, so the surcharge barely moves them —
    footnote 6 is specifically about Tourney's discrimination failure."""
    def run():
        out = {}
        for trace in (rubik, weaver):
            plain_costs = CostModel()
            honest_costs = CostModel(delete_search_us=1.0)
            plain = speedup(simulate_base(trace, costs=plain_costs),
                            simulate(trace, PROCS, costs=plain_costs))
            honest = speedup(simulate_base(trace, costs=honest_costs),
                             simulate(trace, PROCS, costs=honest_costs))
            out[trace.name] = (plain, honest)
        return out

    results = once(benchmark, run)
    report("footnote6_controls", format_table(
        ["section", "constant-time", "search priced"],
        [[n, a, b] for n, (a, b) in results.items()],
        title="Sections with good hashing are insensitive to the "
              "deletion-search surcharge"))
    for name, (plain, honest) in results.items():
        assert abs(plain - honest) / plain < 0.10, name

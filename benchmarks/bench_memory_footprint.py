"""Section 3.1's memory arithmetic, verified.

Paper: "With this encoding, large OPS5 programs (with ~1000
productions) require about 1-2 Mbytes of memory, a potential problem,
since a message-passing processor may have only 10-20 kbytes of local
memory."  Remedies: partition the Rete nodes (keeping one production's
nodes in different partitions), and/or the 14-byte structure encoding.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.ops5 import parse_production
from repro.rete import (build_network, inline_bytes, partition_nodes,
                        partitions_needed, struct_bytes)


def thousand_production_network():
    rules = []
    for i in range(1000):
        ces = " ".join(f"(c{i}x{j} ^v <x>)" for j in range(3))
        rules.append(parse_production(f"(p r{i} {ces} --> (remove 1))"))
    return build_network(rules)


def test_section_3_1_memory_arithmetic(benchmark, report):
    net = once(benchmark, thousand_production_network)

    inline = inline_bytes(net)
    struct = struct_bytes(net)
    rows = [
        ["two-input nodes", net.node_count()],
        ["in-line expansion", f"{inline / 1_000_000:.2f} MB"],
        ["14-byte struct encoding", f"{struct / 1000:.1f} KB"],
        ["partitions to fit 10 KB (inline)",
         partitions_needed(net, 10_000, "inline")],
        ["partitions to fit 10 KB (struct)",
         partitions_needed(net, 10_000, "struct")],
        ["partitions to fit 20 KB (struct)",
         partitions_needed(net, 20_000, "struct")],
    ]
    report("memory_footprint", format_table(
        ["quantity", "value"], rows,
        title="Section 3.1: ~1000-production program vs 10-20 KB local "
              "memories"))

    # The paper's 1-2 MB figure for in-line expansion.
    assert 1_000_000 <= inline <= 2_000_000
    # The struct encoding brings the program within a handful of
    # partitions of a 10-20 KB local memory.
    assert partitions_needed(net, 10_000, "struct") <= 8
    assert partitions_needed(net, 20_000, "struct") <= 3
    # Without it, in-line code would need hundreds of partitions.
    assert partitions_needed(net, 10_000, "inline") > 100


def test_partitioning_contention_rule(benchmark, report):
    """Nodes of one production land in different partitions; the
    partitions stay balanced."""
    def run():
        net = thousand_production_network()
        return net, partition_nodes(net, 32)

    net, result = once(benchmark, run)
    sizes = result.partition_sizes()
    report("memory_partitioning", format_table(
        ["metric", "value"],
        [["partitions", result.n_partitions],
         ["min size", min(sizes)],
         ["max size", max(sizes)],
         ["conflicted productions", len(result.conflicted_productions)]],
        title="Greedy node partitioning over 32 partitions"))

    assert result.conflicted_productions == []
    assert max(sizes) - min(sizes) <= 2
    for name, node_ids in net.production_nodes.items():
        partitions = [result.assignment[n] for n in node_ids]
        assert len(set(partitions)) == len(partitions)

"""Harness performance tracking: trace cache, parallel sweeps, hot path.

Unlike its siblings, this benchmark measures the *harness itself* rather
than a figure of the paper: how long it takes to obtain the three
canonical sections (cold build vs warm cache) and to regenerate the
Figure 5-1 sweep (pre-PR serial reference path vs the optimized
simulator on a warm cache).  The pre-PR baseline is executed live from
:mod:`repro.mpc._reference` — the preserved original event loop — so
both sides of every ratio run on the same machine, in the same process.

Results are written machine-readably to ``BENCH_harness.json`` at the
repo root so the performance trajectory is tracked across PRs.  Run::

    PYTHONPATH=src python -m pytest benchmarks/bench_harness_perf.py -s
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import resource
import time

import repro.trace.cache as trace_cache
from conftest import once
from repro.mpc import (DEFAULT_PROC_COUNTS, SCALE_PROC_COUNTS, RunConfig,
                       iter_cycle_results, speedup, speedup_curve)
from repro.mpc._reference import simulate_reference
from repro.mpc.simulator import simulate
from repro.rete.hashing import BucketKey
from repro.trace import clear_cache, set_cache_enabled
from repro.workloads import (StreamSpec, SyntheticStream, rubik_section,
                             tourney_section, weaver_section)
from repro.workloads.programs import (blocks_world_trace, monkey_trace,
                                      router_trace)

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_harness.json"

SECTION_BUILDERS = (rubik_section, tourney_section, weaver_section)
PROGRAM_BUILDERS = (blocks_world_trace, monkey_trace, router_trace)


def _merge_results(update: dict) -> dict:
    """Merge *update* into ``BENCH_harness.json`` (section-wise), so the
    file survives running any one benchmark test alone."""
    results = {}
    if BENCH_JSON.exists():
        results = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    results.update(update)
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n",
                          encoding="utf-8")
    return results


def _best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time of *fn* over *repeats* runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_sections():
    return [build() for build in SECTION_BUILDERS]


def _fig5_1_pre_pr():
    """The pre-PR Figure 5-1 path: cold builds + reference event loop."""
    all_speedups = []
    for build in SECTION_BUILDERS:
        trace = build()
        base = simulate_reference(trace, 1)
        all_speedups.append(
            [speedup(base, simulate_reference(trace, n))
             for n in DEFAULT_PROC_COUNTS])
    return all_speedups


def _fig5_1_current(workers):
    """Today's Figure 5-1 path: cached sections + optimized sweep."""
    return [speedup_curve(build(), DEFAULT_PROC_COUNTS,
                          workers=workers).speedups
            for build in SECTION_BUILDERS]


def test_harness_perf(benchmark, report, workers):
    results = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "machine": {"cpus": os.cpu_count(),
                    "platform": platform.platform(),
                    "python": platform.python_version()},
        "workers": workers,
    }

    # --- trace load: cold build vs warm cache ---------------------------
    set_cache_enabled(False)
    try:
        cold_s = _best_of(_build_sections)
    finally:
        set_cache_enabled(None)
    clear_cache()
    _build_sections()  # populate disk + memory layers

    def _warm_disk():
        trace_cache._memory.clear()
        _build_sections()

    warm_disk_s = _best_of(_warm_disk)
    warm_memory_s = _best_of(_build_sections)
    results["trace_load"] = {
        "what": "build rubik+tourney+weaver sections",
        "cold_build_s": round(cold_s, 4),
        "warm_disk_s": round(warm_disk_s, 4),
        "warm_memory_s": round(warm_memory_s, 6),
        "cold_over_warm_disk": round(cold_s / warm_disk_s, 2),
    }

    # Same comparison for the recorded OPS5 program traces, where the
    # cold path runs the full Rete engine rather than a synthesizer.
    def _record_programs():
        return [build() for build in PROGRAM_BUILDERS]

    set_cache_enabled(False)
    try:
        prog_cold_s = _best_of(_record_programs)
    finally:
        set_cache_enabled(None)
    _record_programs()  # populate

    def _programs_warm_disk():
        trace_cache._memory.clear()
        _record_programs()

    prog_warm_s = _best_of(_programs_warm_disk)
    results["program_trace_load"] = {
        "what": "record blocks-world+monkey+router OPS5 programs",
        "cold_record_s": round(prog_cold_s, 4),
        "warm_disk_s": round(prog_warm_s, 4),
        "cold_over_warm_disk": round(prog_cold_s / prog_warm_s, 2),
    }

    # --- simulator hot path: reference vs optimized ---------------------
    rubik = rubik_section()
    ref_s = _best_of(lambda: simulate_reference(rubik, 16), repeats=5)
    opt_s = _best_of(lambda: simulate(rubik, 16), repeats=5)
    sim_speedup = ref_s / opt_s
    results["simulator_rubik_16procs"] = {
        "reference_s": round(ref_s, 4),
        "optimized_s": round(opt_s, 4),
        "speedup": round(sim_speedup, 2),
    }

    # --- sweeps: serial vs parallel grid --------------------------------
    serial_s = _best_of(lambda: _fig5_1_current(workers=1))
    fanout = max(2, workers)
    parallel_s = _best_of(lambda: _fig5_1_current(workers=fanout))
    results["sweep_fig5_1"] = {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_workers": fanout,
        "parallel_over_serial": round(serial_s / parallel_s, 2),
    }

    # --- the acceptance number: warm full regeneration vs pre-PR --------
    pre_pr_speedups = None
    current_speedups = None

    def _pre_pr():
        nonlocal pre_pr_speedups
        set_cache_enabled(False)
        try:
            pre_pr_speedups = _fig5_1_pre_pr()
        finally:
            set_cache_enabled(None)

    pre_pr_s = _best_of(_pre_pr)

    def _current():
        nonlocal current_speedups
        current_speedups = _fig5_1_current(workers=workers)

    warm_s = once(benchmark, lambda: _best_of(_current))
    results["fig5_1_regeneration"] = {
        "what": "figure 5-1 sweep, all three sections",
        "pre_pr_cold_serial_s": round(pre_pr_s, 4),
        "warm_cache_current_s": round(warm_s, 4),
        "speedup_vs_pre_pr": round(pre_pr_s / warm_s, 2),
    }

    # The optimization must not move a single number of the figure.
    assert current_speedups == pre_pr_speedups, \
        "optimized path changed Figure 5-1 speedups"

    results = _merge_results(results)
    report("harness_perf", json.dumps(results, indent=2)
           + f"\n[also saved to {BENCH_JSON}]")

    # The PR's acceptance bars (generous margins below the measured
    # values, so background load does not flake the suite).
    assert sim_speedup >= 1.5, \
        f"simulator hot path only {sim_speedup:.2f}x over reference"
    assert pre_pr_s / warm_s >= 2.0, (
        f"warm-cache figure regeneration only {pre_pr_s / warm_s:.2f}x "
        f"over the pre-PR serial cold path")


#: The scale workload: one streamed section of 10^6 activations whose
#: cycles are mostly idle — the regime the paper's saturation analysis
#: describes (past the knee, most cycles distribute nothing to most
#: processors) and the one round compression exists for.
SCALE_SPEC = StreamSpec(name="scale", active_cycles=1_000,
                        activations_per_cycle=1_000, idle_between=2_800,
                        terminals_per_cycle=4, seed=0)


def _rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _drain(trace, config: RunConfig) -> float:
    """Simulate *trace*, accumulating totals and discarding per-cycle
    results (the memory-bounded path both modes are measured through —
    materializing 4.6M dense cycle results at P=4096 would need ~100s
    of GB)."""
    total_us = 0.0
    for result, repeat in iter_cycle_results(trace, config):
        total_us += result.makespan_us if repeat == 1 \
            else result.makespan_us * repeat
    return total_us


def test_scale_sweep(report):
    """The tentpole acceptance number: the compressed active-set loop vs
    the dense exact loop on a streamed million-activation workload, at
    processor counts into the thousands.  One measurement per point —
    the baseline alone is minutes of wall clock at P=4096."""
    stream = SyntheticStream(SCALE_SPEC)
    points = []
    for n_procs in SCALE_PROC_COUNTS:
        start = time.perf_counter()
        compressed_total = _drain(
            stream, RunConfig(n_procs=n_procs, compress_rounds=True))
        compressed_s = time.perf_counter() - start
        start = time.perf_counter()
        exact_total = _drain(stream, RunConfig(n_procs=n_procs))
        exact_s = time.perf_counter() - start
        assert compressed_total == exact_total, \
            f"compression changed the P={n_procs} makespan"
        points.append({
            "n_procs": n_procs,
            "exact_s": round(exact_s, 2),
            "compressed_s": round(compressed_s, 2),
            "speedup": round(exact_s / compressed_s, 1),
        })
    peak_rss_mb = round(_rss_mb(), 1)
    section = {
        "what": "streamed 1e6-activation mostly-idle section, dense "
                "exact loop vs compressed active-set loop "
                "(accumulate-and-discard on both sides)",
        "active_cycles": SCALE_SPEC.active_cycles,
        "activations": SCALE_SPEC.total_activations,
        "total_cycles": SCALE_SPEC.n_cycles,
        "points": points,
        "peak_rss_mb": peak_rss_mb,
    }
    _merge_results({"scale_sweep": section})
    report("scale_sweep", json.dumps(section, indent=2)
           + f"\n[also saved to {BENCH_JSON}]")
    for point in points:
        if point["n_procs"] >= 1024:
            assert point["speedup"] >= 10.0, (
                f"compression only {point['speedup']}x at "
                f"P={point['n_procs']} (need >= 10x)")
    # Bounded memory: 4.6M cycles at P=4096 never materialize.
    assert peak_rss_mb < 1536, f"peak RSS {peak_rss_mb} MiB"


def test_symbol_interning(report):
    """Micro-benchmark of the rete symbol-interning change: equality
    over bucket keys whose string values are interned (pointer check
    fast path) vs structurally-equal keys that dodge interning."""

    class _Uninterned(str):
        """``type(v) is str`` fails, so :func:`intern_value` skips it."""

    symbols = [f"symbol-{i:03d}" for i in range(64)]
    n_keys = 50_000

    def _keys(wrap):
        return [BucketKey(1, (wrap(symbols[i % len(symbols)]),
                              wrap(symbols[(i * 7) % len(symbols)])))
                for i in range(n_keys)]

    def _eq_sweep(keys):
        return sum(1 for a, b in zip(keys, keys[len(symbols):])
                   if a == b)

    # encode/decode forces a fresh str object per key, which interning
    # then collapses back to one representative.
    interned = _keys(lambda s: s.encode().decode())
    uninterned = _keys(_Uninterned)
    matches = _eq_sweep(interned)
    assert matches == _eq_sweep(uninterned)  # same workload
    interned_s = _best_of(lambda: _eq_sweep(interned), repeats=5)
    uninterned_s = _best_of(lambda: _eq_sweep(uninterned), repeats=5)
    # Interned equal values are one shared object.
    assert interned[0].values[0] is interned[len(symbols)].values[0]
    assert uninterned[0].values[0] \
        is not uninterned[len(symbols)].values[0]
    section = {
        "what": "equality sweep over 50k 2-symbol bucket keys, "
                "interned vs interning-dodging values",
        "interned_s": round(interned_s, 4),
        "uninterned_s": round(uninterned_s, 4),
        "interned_over_uninterned": round(uninterned_s / interned_s, 2),
    }
    _merge_results({"symbol_interning": section})
    report("symbol_interning", json.dumps(section, indent=2)
           + f"\n[also saved to {BENCH_JSON}]")
    # Interning must never make comparisons slower (generous margin:
    # identical strings compare fast even without identity).
    assert interned_s <= uninterned_s * 1.25

"""Ablations of the simulator's modelling choices, matching the paper's
own sensitivity notes.

* Section 4: "We also experimented with some variations in the ratio of
  the time to process the left and right tokens.  These variations did
  not make more than 5-10% difference in the results."
* Section 5.2.1, option 2: dummy nodes "can divide the successors into
  2-4 parts" — an alternative remedy to unsharing for the Weaver
  bottleneck.
* Two-granularity design (Section 3.2): processing the wme-generated
  tokens locally (coarse grain) instead of routing them as messages is
  what keeps the right-heavy Rubik cheap; an all-fine-grained variant
  would pay per-root messages.  We quantify the coarse-grain advantage
  by comparing message counts.
"""

import pytest

from conftest import once
from repro.analysis import format_table
from repro.mpc import (CostModel, TABLE_5_1, simulate, simulate_base,
                       speedup)
from repro.trace import insert_dummy_nodes, validate_trace
from repro.workloads.weaver import HOT_NODE


def test_left_right_ratio_insensitivity(benchmark, rubik, report):
    """Varying the left:right cost ratio around the paper's 2:1 changes
    32-processor speedups by no more than the paper's 5-10% band."""
    ratios = [1.6, 2.0, 2.4]

    def run():
        out = []
        for ratio in ratios:
            costs = CostModel().scaled(ratio)
            base = simulate_base(rubik, costs=costs)
            result = simulate(rubik, n_procs=32, costs=costs,
                              overheads=TABLE_5_1[1])
            out.append(speedup(base, result))
        return out

    speedups = once(benchmark, run)
    report("ablation_cost_ratio", format_table(
        ["left:right ratio", "speedup @32"],
        [[r, s] for r, s in zip(ratios, speedups)],
        title="Cost-ratio ablation (paper: 5-10% difference at most)"))
    reference = speedups[ratios.index(2.0)]
    for s in speedups:
        assert abs(s - reference) / reference < 0.10


def test_dummy_nodes_remedy(benchmark, weaver, report):
    """Dummy nodes (2-4 parts) also relieve the Weaver bottleneck,
    though less cleanly than unsharing (each dummy costs an extra left
    activation)."""
    def run():
        base = simulate_base(weaver)
        rows = []
        baseline = speedup(base, simulate(weaver, n_procs=16))
        rows.append(("baseline", baseline))
        for parts in (2, 3, 4):
            transformed = insert_dummy_nodes(weaver, HOT_NODE,
                                             parts=parts)
            validate_trace(transformed)
            rows.append((f"dummy x{parts}",
                         speedup(base, simulate(transformed,
                                                n_procs=16))))
        return rows

    rows = once(benchmark, run)
    report("ablation_dummy_nodes", format_table(
        ["variant", "speedup @16"], list(rows),
        title="Dummy-node remedy for the Weaver bottleneck "
              "(Section 5.2.1, option 2)"))
    baseline = rows[0][1]
    best = max(s for _, s in rows[1:])
    assert best > baseline * 1.1


def test_coarse_grain_saves_messages(benchmark, rubik, report):
    """The two-granularity mapping: wme-generated (mostly right) tokens
    are processed where the broadcast landed, costing zero messages.
    Count how many messages fine-grained routing of roots would add."""
    def run():
        result = simulate(rubik, n_procs=32, overheads=TABLE_5_1[1])
        actual = result.n_messages
        # Fine-grained alternative: every root whose bucket is not on
        # its "source" processor would travel.  With a broadcast there
        # is no source, so the expected extra is (P-1)/P per root.
        roots = sum(len(c.roots()) for c in rubik.cycles)
        hypothetical = actual + round(roots * 31 / 32)
        return actual, hypothetical

    actual, hypothetical = once(benchmark, run)
    report("ablation_granularity",
           f"messages with two-granularity mapping: {actual}\n"
           f"messages if roots were routed individually: ~{hypothetical}\n"
           f"saving: {1 - actual / hypothetical:.0%}")
    assert actual < 0.6 * hypothetical
